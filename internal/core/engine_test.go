package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"gasf/internal/filter"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// paperFilters builds the three DC filters of the running example:
// A = (10, 50), B = (5, 40), C = (25, 80) on attribute "temperature".
func paperFilters(t *testing.T) []filter.Filter {
	t.Helper()
	a, err := filter.NewDC1("A", "temperature", 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := filter.NewDC1("B", "temperature", 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := filter.NewDC1("C", "temperature", 80, 25)
	if err != nil {
		t.Fatal(err)
	}
	return []filter.Filter{a, b, c}
}

// renderTransmissions formats transmissions compactly for comparison:
// "value->{dests}@slot" with slot the 1-based release position.
func renderTransmissions(trs []Transmission) []string {
	out := make([]string, 0, len(trs))
	for _, tr := range trs {
		slot := int(tr.ReleasedAt.Sub(trace.Epoch)/trace.DefaultInterval) + 1
		out = append(out, fmt.Sprintf("%g->{%s}@%d", tr.Tuple.ValueAt(0), strings.Join(tr.Destinations, ","), slot))
	}
	return out
}

func wantTransmissions(t *testing.T, got []Transmission, want []string) {
	t.Helper()
	rendered := renderTransmissions(got)
	if len(rendered) != len(want) {
		t.Fatalf("transmissions = %v, want %v", rendered, want)
	}
	for i := range want {
		if rendered[i] != want[i] {
			t.Errorf("transmission %d = %s, want %s", i, rendered[i], want[i])
		}
	}
}

// TestFig28RegionBasedGreedy reproduces Fig 2.8 end to end: region 1 emits
// 0->{A,B,C} at slot 2; region 2 emits 100->{A,B,C} and 50->{A,B} at
// slot 10.
func TestFig28RegionBasedGreedy(t *testing.T) {
	res, err := Run(paperFilters(t), trace.PaperExample(), Options{Algorithm: RG})
	if err != nil {
		t.Fatal(err)
	}
	wantTransmissions(t, res.Transmissions, []string{
		"0->{A,B,C}@2",
		"50->{A,B}@10",
		"100->{A,B,C}@10",
	})
	if res.Stats.DistinctOutputs != 3 {
		t.Errorf("distinct outputs = %d, want 3", res.Stats.DistinctOutputs)
	}
	if res.Stats.Regions != 2 {
		t.Errorf("regions = %d, want 2", res.Stats.Regions)
	}
	if res.Stats.RegionsCut != 0 {
		t.Errorf("cut regions = %d, want 0", res.Stats.RegionsCut)
	}
}

// TestFig211PerCandidateSetGreedy reproduces Fig 2.11: with the
// per-candidate-set output strategy, outputs appear as each set closes:
// 0->{A,B,C}@2, 50->{B}@6, 50->{A}@7, 100->{A,B,C}@10.
func TestFig211PerCandidateSetGreedy(t *testing.T) {
	res, err := Run(paperFilters(t), trace.PaperExample(),
		Options{Algorithm: PS, Strategy: PerCandidateSet})
	if err != nil {
		t.Fatal(err)
	}
	wantTransmissions(t, res.Transmissions, []string{
		"0->{A,B,C}@2",
		"50->{B}@6",
		"50->{A}@7",
		"100->{A,B,C}@10",
	})
	// The union is still 3 distinct tuples (0, 50, 100).
	if res.Stats.DistinctOutputs != 3 {
		t.Errorf("distinct outputs = %d, want 3", res.Stats.DistinctOutputs)
	}
}

// TestFig34RegionGreedyWithCut reproduces Fig 3.4: a cut right after
// tuple 80 (slot 7) closes region 2 early; greedy picks 59->{A,C} and
// 50->{B}; the final sets then produce 100->{A,B}.
func TestFig34RegionGreedyWithCut(t *testing.T) {
	// Region span at slot 7: tuples 45(slot 4)..80(slot 7) = 30ms.
	// A 30ms budget triggers the cut exactly there and not earlier:
	// at slot 6 the span is 45..59 = 20ms.
	res, err := Run(paperFilters(t), trace.PaperExample(),
		Options{Algorithm: RG, Cuts: true, MaxDelay: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	wantTransmissions(t, res.Transmissions, []string{
		"0->{A,B,C}@2",
		"50->{B}@7",
		"59->{A,C}@7",
		"100->{A,B}@10",
	})
	if res.Stats.RegionsCut == 0 {
		t.Error("expected at least one cut region")
	}
}

// TestFig35PerCandidateSetWithCut reproduces Fig 3.5: filter C's long set
// is cut at slot 9 and chooses 97 (highest utility); A and B then follow
// via the first heuristic at slot 10.
func TestFig35PerCandidateSetWithCut(t *testing.T) {
	// C's open set starts at 59 (slot 6). At slot 9 its age is 30ms.
	res, err := Run(paperFilters(t), trace.PaperExample(),
		Options{Algorithm: PS, Strategy: PerCandidateSet, Cuts: true, MaxDelay: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	wantTransmissions(t, res.Transmissions, []string{
		"0->{A,B,C}@2",
		"50->{B}@6",
		"50->{A}@7",
		"97->{C}@9",
		"97->{A,B}@10",
	})
}

// TestGroupAwareNeverWorseThanSelfInterested: the paper's bottom-line
// guarantee — GA distinct outputs never exceed SI outputs — checked on the
// NAMOS trace for all four algorithm variants.
func TestGroupAwareNeverWorseThanSelfInterested(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 3000, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	mkFilters := func() []filter.Filter {
		f1, _ := filter.NewDC1("f1", "fluoro", 0.10, 0.05)
		f2, _ := filter.NewDC1("f2", "fluoro", 0.22, 0.10)
		f3, _ := filter.NewDC1("f3", "fluoro", 0.16, 0.08)
		return []filter.Filter{f1, f2, f3}
	}
	si, err := RunSelfInterested(mkFilters(), sr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]Options{
		"RG":   {Algorithm: RG},
		"RG+C": {Algorithm: RG, Cuts: true, MaxDelay: 100 * time.Millisecond},
		"PS":   {Algorithm: PS},
		"PS+C": {Algorithm: PS, Cuts: true, MaxDelay: 100 * time.Millisecond},
	}
	for name, opts := range variants {
		t.Run(name, func(t *testing.T) {
			res, err := Run(mkFilters(), sr, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.DistinctOutputs > si.Stats.DistinctOutputs {
				t.Errorf("GA outputs %d > SI outputs %d", res.Stats.DistinctOutputs, si.Stats.DistinctOutputs)
			}
			if res.Stats.DistinctOutputs == 0 {
				t.Error("no outputs produced")
			}
			// Per-filter delivery counts must match SI per-filter
			// counts: one output per owed reference.
			for id, n := range si.Stats.PerFilter {
				if got := res.Stats.PerFilter[id]; got != n {
					t.Errorf("filter %s deliveries = %d, want %d", id, got, n)
				}
			}
		})
	}
}

// TestOutputsSatisfyEveryFilter verifies quality: for each filter, the
// delivered tuples form a valid (slack, delta) compression of the input —
// each delivered tuple is within slack of the corresponding SI reference.
func TestOutputsSatisfyEveryFilter(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 2000, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string][2]float64{ // id -> {delta, slack}
		"f1": {0.046, 0.0153},
		"f2": {0.031, 0.0103},
		"f3": {0.062, 0.031},
	}
	for _, alg := range []Algorithm{RG, PS} {
		t.Run(alg.String(), func(t *testing.T) {
			var filters []filter.Filter
			for _, id := range []string{"f1", "f2", "f3"} {
				f, err := filter.NewDC1(id, "tmpr4", specs[id][0], specs[id][1])
				if err != nil {
					t.Fatal(err)
				}
				filters = append(filters, f)
			}
			res, err := Run(filters, sr, Options{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			// Reconstruct per-filter delivered streams.
			perFilter := make(map[string][]*tuple.Tuple)
			for _, tr := range res.Transmissions {
				for _, d := range tr.Destinations {
					perFilter[d] = append(perFilter[d], tr.Tuple)
				}
			}
			for id, spec := range specs {
				got := perFilter[id]
				sort.Slice(got, func(i, j int) bool { return got[i].Seq < got[j].Seq })
				// Compute the SI reference stream for this spec.
				f, err := filter.NewDC1(id, "tmpr4", spec[0], spec[1])
				if err != nil {
					t.Fatal(err)
				}
				var refs []*tuple.Tuple
				si := f.SelfInterested()
				for i := 0; i < sr.Len(); i++ {
					refs = append(refs, si.Process(sr.At(i))...)
				}
				if len(got) != len(refs) {
					t.Fatalf("filter %s: %d deliveries, %d references", id, len(got), len(refs))
				}
				for i := range refs {
					rv, _ := refs[i].Value("tmpr4")
					gv, _ := got[i].Value("tmpr4")
					if d := gv - rv; d > spec[1]+1e-9 || d < -spec[1]-1e-9 {
						t.Errorf("filter %s delivery %d: value %g is %.4g from reference %g (slack %g)",
							id, i, gv, d, rv, spec[1])
					}
				}
			}
		})
	}
}

// TestUtilitiesDrainToZero: after Finish, the group-utility table must be
// empty — every admission was balanced by a dismissal or a set decision.
func TestUtilitiesDrainToZero(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 1500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{RG, PS} {
		f1, _ := filter.NewDC1("f1", "tmpr2", 0.046, 0.023)
		f2, _ := filter.NewDC1("f2", "tmpr2", 0.092, 0.046)
		e, err := NewEngine([]filter.Filter{f1, f2}, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < sr.Len(); i++ {
			if err := e.Step(sr.At(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Finish(); err != nil {
			t.Fatal(err)
		}
		if e.util.Len() != 0 {
			t.Errorf("%v: %d utility entries leaked", alg, e.util.Len())
		}
		if len(e.attached) != 0 || len(e.decidedPicks) != 0 {
			t.Errorf("%v: pending decision state leaked (%d attached, %d picks)",
				alg, len(e.attached), len(e.decidedPicks))
		}
	}
}

// TestLatencyModel: with the default strategy, SI latency equals the
// multicast constant while RG latency adds the region wait.
func TestLatencyModel(t *testing.T) {
	const mc = 12 * time.Millisecond
	sr := trace.PaperExample()
	si, err := RunSelfInterested(paperFilters(t), sr, Options{MulticastDelay: mc})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range si.Stats.Latencies {
		if l != mc {
			t.Errorf("SI latency %d = %v, want %v", i, l, mc)
		}
	}
	ga, err := Run(paperFilters(t), sr, Options{Algorithm: RG, MulticastDelay: mc})
	if err != nil {
		t.Fatal(err)
	}
	if ga.Stats.MeanLatency() <= si.Stats.MeanLatency() {
		t.Errorf("RG mean latency %v not above SI %v", ga.Stats.MeanLatency(), si.Stats.MeanLatency())
	}
	// Tuple 45 (ts slot 4) delivered at slot 10: latency = 60ms + mc.
	found := false
	for _, tr := range ga.Transmissions {
		if tr.Tuple.ValueAt(0) == 50 {
			found = true
			if got := tr.ReleasedAt.Sub(tr.Tuple.TS) + mc; got != 50*time.Millisecond+mc {
				t.Errorf("tuple 50 latency = %v, want %v", got, 50*time.Millisecond+mc)
			}
		}
	}
	if !found {
		t.Error("tuple 50 not transmitted")
	}
}

// TestCutsReduceLatency: decreasing the cut budget monotonically reduces
// (or keeps equal) the mean latency and never increases output below SI
// performance (Figs 4.9, 4.12).
func TestCutsReduceLatency(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 2000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []filter.Filter {
		f1, _ := filter.NewDC1("f1", "fluoro", 0.10, 0.05)
		f2, _ := filter.NewDC1("f2", "fluoro", 0.22, 0.10)
		f3, _ := filter.NewDC1("f3", "fluoro", 0.16, 0.08)
		return []filter.Filter{f1, f2, f3}
	}
	budgets := []time.Duration{125 * time.Millisecond, 60 * time.Millisecond, 30 * time.Millisecond, 15 * time.Millisecond, 8 * time.Millisecond}
	var lats []time.Duration
	var cutsPct []float64
	for _, b := range budgets {
		res, err := Run(mk(), sr, Options{Algorithm: RG, Cuts: true, MaxDelay: b})
		if err != nil {
			t.Fatal(err)
		}
		lats = append(lats, res.Stats.MeanLatency())
		cutsPct = append(cutsPct, float64(res.Stats.RegionsCut)/float64(res.Stats.Regions))
	}
	for i := 1; i < len(lats); i++ {
		if lats[i] > lats[i-1]+time.Millisecond {
			t.Errorf("latency not decreasing with budget: %v", lats)
			break
		}
	}
	if cutsPct[len(cutsPct)-1] <= cutsPct[0] {
		t.Errorf("percent of regions cut did not increase: %v", cutsPct)
	}
}

// TestBatchedStrategyDelaysOutput: a batch far larger than the natural
// region inflates latency (Fig 4.13).
func TestBatchedStrategyDelaysOutput(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 1200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []filter.Filter {
		f1, _ := filter.NewDC1("f1", "fluoro", 0.10, 0.05)
		f2, _ := filter.NewDC1("f2", "fluoro", 0.16, 0.08)
		return []filter.Filter{f1, f2}
	}
	base, err := Run(mk(), sr, Options{Algorithm: PS})
	if err != nil {
		t.Fatal(err)
	}
	batched, err := Run(mk(), sr, Options{Algorithm: PS, Strategy: Batched, BatchSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	pcs, err := Run(mk(), sr, Options{Algorithm: PS, Strategy: PerCandidateSet})
	if err != nil {
		t.Fatal(err)
	}
	if batched.Stats.MeanLatency() <= base.Stats.MeanLatency() {
		t.Errorf("batched latency %v not above earliest-region %v",
			batched.Stats.MeanLatency(), base.Stats.MeanLatency())
	}
	if pcs.Stats.MeanLatency() > base.Stats.MeanLatency() {
		t.Errorf("per-candidate-set latency %v above earliest-region %v",
			pcs.Stats.MeanLatency(), base.Stats.MeanLatency())
	}
	// Output size is identical across strategies: release timing must
	// not change what is chosen.
	if base.Stats.DistinctOutputs != batched.Stats.DistinctOutputs ||
		base.Stats.DistinctOutputs != pcs.Stats.DistinctOutputs {
		t.Errorf("strategies changed output size: %d / %d / %d",
			base.Stats.DistinctOutputs, batched.Stats.DistinctOutputs, pcs.Stats.DistinctOutputs)
	}
}

// TestEngineValidation covers construction and stepping errors.
func TestEngineValidation(t *testing.T) {
	f1, _ := filter.NewDC1("f", "v", 1, 0.4)
	f2, _ := filter.NewDC1("f", "v", 2, 0.8)
	if _, err := NewEngine(nil, Options{}); err == nil {
		t.Error("empty group should fail")
	}
	if _, err := NewEngine([]filter.Filter{f1, f2}, Options{}); err == nil {
		t.Error("duplicate ids should fail")
	}
	if _, err := NewEngine([]filter.Filter{f1}, Options{Cuts: true}); err == nil {
		t.Error("cuts without MaxDelay should fail")
	}
	if _, err := NewEngine([]filter.Filter{f1}, Options{Strategy: Batched}); err == nil {
		t.Error("batched without BatchSize should fail")
	}
	if _, err := NewEngine([]filter.Filter{f1}, Options{Algorithm: Algorithm(9)}); err == nil {
		t.Error("unknown algorithm should fail")
	}

	// Non-increasing timestamps rejected.
	s := tuple.MustSchema("v")
	e, err := NewEngine([]filter.Filter{f1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t0 := tuple.MustNew(s, 0, trace.Epoch, []float64{0})
	t1 := tuple.MustNew(s, 1, trace.Epoch, []float64{1})
	if err := e.Step(t0); err != nil {
		t.Fatal(err)
	}
	if err := e.Step(t1); err == nil {
		t.Error("equal timestamp should fail")
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := e.Step(t1); err == nil {
		t.Error("Step after Finish should fail")
	}
	if err := e.Finish(); err != nil {
		t.Errorf("double Finish should be a no-op, got %v", err)
	}
}

// TestStatefulFilterInGroup: a stateful filter coexists with stateless
// ones under both algorithms; its decisions are folded into regions.
func TestStatefulFilterInGroup(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 1000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{RG, PS} {
		t.Run(alg.String(), func(t *testing.T) {
			sf, err := filter.NewStatefulDC("sf", "fluoro", 0.14, 0.07)
			if err != nil {
				t.Fatal(err)
			}
			dc, err := filter.NewDC1("dc", "fluoro", 0.14, 0.07)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run([]filter.Filter{sf, dc}, sr, Options{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.PerFilter["sf"] == 0 {
				t.Error("stateful filter received no deliveries")
			}
			if res.Stats.PerFilter["dc"] == 0 {
				t.Error("stateless filter received no deliveries")
			}
			// Sharing should make the union smaller than the sum.
			if res.Stats.DistinctOutputs >= res.Stats.PerFilter["sf"]+res.Stats.PerFilter["dc"] {
				t.Errorf("no sharing: union %d, deliveries %d+%d",
					res.Stats.DistinctOutputs, res.Stats.PerFilter["sf"], res.Stats.PerFilter["dc"])
			}
		})
	}
}

// TestSamplerGroupMultiDegree: three stratified samplers with different
// rates share picks; union beats self-interested sampling.
func TestSamplerGroupMultiDegree(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 2000, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []filter.Filter {
		s1, _ := filter.NewSS("s1", "tmpr4", time.Second, 0.15, 50, 20, filter.Random)
		s2, _ := filter.NewSS("s2", "tmpr4", time.Second, 0.30, 50, 20, filter.Random)
		s3, _ := filter.NewSS("s3", "tmpr4", time.Second, 0.23, 50, 20, filter.Random)
		return []filter.Filter{s1, s2, s3}
	}
	ga, err := Run(mk(), sr, Options{Algorithm: RG})
	if err != nil {
		t.Fatal(err)
	}
	si, err := RunSelfInterested(mk(), sr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ga.Stats.DistinctOutputs > si.Stats.DistinctOutputs {
		t.Errorf("GA union %d > SI union %d", ga.Stats.DistinctOutputs, si.Stats.DistinctOutputs)
	}
	// Some sharing must materialize (the paper's Fig 5.2 reports ~0.95
	// output ratios for SS groups; the benefit is modest but real).
	if ga.Stats.DistinctOutputs >= si.Stats.DistinctOutputs {
		t.Errorf("expected sharing: GA %d vs SI %d", ga.Stats.DistinctOutputs, si.Stats.DistinctOutputs)
	}
	// Quotas satisfied: per-filter deliveries match SI counts.
	for id, n := range si.Stats.PerFilter {
		if got := ga.Stats.PerFilter[id]; got != n {
			t.Errorf("filter %s deliveries = %d, want %d", id, got, n)
		}
	}
}

// TestTieBreakAblation: PreferEarliest changes decisions but preserves
// validity (per-filter counts).
func TestTieBreakAblation(t *testing.T) {
	sr := trace.PaperExample()
	latest, err := Run(paperFilters(t), sr, Options{Algorithm: RG, Ties: PreferLatest})
	if err != nil {
		t.Fatal(err)
	}
	earliest, err := Run(paperFilters(t), sr, Options{Algorithm: RG, Ties: PreferEarliest})
	if err != nil {
		t.Fatal(err)
	}
	// Fig 2.8's region 2 tie (97 vs 100, then 45 vs 50) flips.
	wantTransmissions(t, earliest.Transmissions, []string{
		"0->{A,B,C}@2",
		"45->{A,B}@10",
		"97->{A,B,C}@10",
	})
	if latest.Stats.DistinctOutputs != earliest.Stats.DistinctOutputs {
		t.Errorf("tie-break changed output size: %d vs %d",
			latest.Stats.DistinctOutputs, earliest.Stats.DistinctOutputs)
	}
}

// TestRunDeterminism: identical runs produce identical transmissions.
func TestRunDeterminism(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 800, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []filter.Filter {
		f1, _ := filter.NewDC1("f1", "tmpr2", 0.046, 0.023)
		f2, _ := filter.NewDC1("f2", "tmpr2", 0.07, 0.03)
		return []filter.Filter{f1, f2}
	}
	for _, alg := range []Algorithm{RG, PS} {
		a, err := Run(mk(), sr, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(mk(), sr, Options{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		ra, rb := renderTransmissions(a.Transmissions), renderTransmissions(b.Transmissions)
		if len(ra) != len(rb) {
			t.Fatalf("%v: nondeterministic transmission count", alg)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("%v: nondeterministic transmission %d: %s vs %s", alg, i, ra[i], rb[i])
			}
		}
	}
}

// TestStatsHelpers exercises the aggregate accessors.
func TestStatsHelpers(t *testing.T) {
	var s Stats
	if s.OIRatio() != 0 || s.CPUPerTuple() != 0 || s.MeanLatency() != 0 || s.MeanRegionTuples() != 0 {
		t.Error("zero-value stats accessors should return 0")
	}
	s.Inputs = 10
	s.DistinctOutputs = 4
	s.CPU = 100 * time.Microsecond
	s.Latencies = []time.Duration{10 * time.Millisecond, 30 * time.Millisecond}
	s.Regions = 2
	s.RegionTupleSum = 12
	if got := s.OIRatio(); got != 0.4 {
		t.Errorf("OIRatio = %g, want 0.4", got)
	}
	if got := s.CPUPerTuple(); got != 10*time.Microsecond {
		t.Errorf("CPUPerTuple = %v", got)
	}
	if got := s.MeanLatency(); got != 20*time.Millisecond {
		t.Errorf("MeanLatency = %v", got)
	}
	if got := s.MeanRegionTuples(); got != 6 {
		t.Errorf("MeanRegionTuples = %g", got)
	}
}
