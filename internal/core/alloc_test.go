package core

import (
	"testing"

	"gasf/internal/filter"
	"gasf/internal/trace"
)

// TestStepAllocsBounded is the allocation regression gate for the engine
// hot path (DESIGN.md §8): a full run over the DC1 NAMOS trace must stay
// within a small per-tuple allocation budget. The budget covers the
// retained outputs (result transmissions, candidate-set members) — the
// steady-state bookkeeping itself is allocation-free; regressions that
// reintroduce per-step map or scratch churn trip this long before they
// show up in wall-clock benchmarks.
func TestStepAllocsBounded(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	stat, err := sr.MeanAbsChange("fluoro")
	if err != nil {
		t.Fatal(err)
	}
	build := func() []filter.Filter {
		out := make([]filter.Filter, 3)
		for i := range out {
			mult := 1 + float64(i)*0.37
			f, err := filter.NewDC1(string(rune('A'+i)), "fluoro", mult*stat, 0.5*mult*stat)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = f
		}
		return out
	}
	const perStepBudget = 12.0
	for _, alg := range []Algorithm{RG, PS} {
		avg := testing.AllocsPerRun(3, func() {
			e, err := NewEngine(build(), Options{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < sr.Len(); i++ {
				if err := e.Step(sr.At(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Finish(); err != nil {
				t.Fatal(err)
			}
		})
		perStep := avg / float64(sr.Len())
		if perStep > perStepBudget {
			t.Errorf("%v: %.2f allocs per Step on the DC1 trace, budget %.1f", alg, perStep, perStepBudget)
		}
	}
}

// TestSeqCounts covers the generational utility index directly, including
// rebase-on-empty, prefix reclamation and the defensive rewind path.
func TestSeqCounts(t *testing.T) {
	var u seqCounts
	if u.Len() != 0 || u.get(0) != 0 {
		t.Fatal("zero value not empty")
	}
	u.inc(100)
	u.inc(100)
	u.inc(101)
	if u.get(100) != 2 || u.get(101) != 1 || u.Len() != 2 {
		t.Fatalf("counts %d/%d len %d", u.get(100), u.get(101), u.Len())
	}
	u.dec(100)
	u.dec(100)
	if u.get(100) != 0 || u.Len() != 1 {
		t.Fatalf("after drain: %d len %d", u.get(100), u.Len())
	}
	// Deleting an absent seq is a no-op, as with the old map.
	u.dec(50)
	u.dec(100)
	if u.Len() != 1 {
		t.Fatal("no-op decs changed length")
	}
	u.dec(101)
	if u.Len() != 0 {
		t.Fatal("index not empty after draining all")
	}
	// Rebase after empty: a much larger seq must not grow the window.
	u.inc(1 << 20)
	if u.Len() != 1 || u.get(1<<20) != 1 || len(u.buf) != 1 {
		t.Fatalf("rebase failed: len %d count %d buf %d", u.Len(), u.get(1<<20), len(u.buf))
	}
	// Defensive rewind below the base goes to the sparse overflow.
	u.inc(1<<20 - 3)
	if u.get(1<<20-3) != 1 || u.get(1<<20) != 1 || u.Len() != 2 {
		t.Fatalf("rewind lost counts: %d %d len %d", u.get(1<<20-3), u.get(1<<20), u.Len())
	}
	u.dec(1<<20 - 3)
	if u.get(1<<20-3) != 0 || u.Len() != 1 {
		t.Fatalf("overflow drain failed: %d len %d", u.get(1<<20-3), u.Len())
	}
	// A far-ahead sequence (sparse or adversarial numbering) must not
	// grow the dense window proportionally to the gap.
	var sp seqCounts
	sp.inc(0)
	sp.inc(1 << 40)
	sp.inc(1 << 40)
	if len(sp.buf) > maxDenseSpan {
		t.Fatalf("sparse inc grew the dense window to %d slots", len(sp.buf))
	}
	if sp.get(0) != 1 || sp.get(1<<40) != 2 || sp.Len() != 2 {
		t.Fatalf("sparse counts wrong: %d %d len %d", sp.get(0), sp.get(1<<40), sp.Len())
	}
	sp.dec(1 << 40)
	sp.dec(1 << 40)
	sp.dec(0)
	if sp.Len() != 0 {
		t.Fatalf("sparse drain left %d entries", sp.Len())
	}
	// A long advancing stream keeps the buffer near the live window.
	var w seqCounts
	for i := 0; i < 100000; i++ {
		w.inc(i)
		if i >= 8 {
			w.dec(i - 8)
		}
	}
	if w.Len() != 8 {
		t.Fatalf("live window %d, want 8", w.Len())
	}
	if len(w.buf)-w.head > 4096 {
		t.Fatalf("window storage %d slots for 8 live entries; prefix not reclaimed", len(w.buf)-w.head)
	}
}
