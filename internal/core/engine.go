package core

import (
	"fmt"
	"time"

	"gasf/internal/filter"
	"gasf/internal/hitting"
	"gasf/internal/predict"
	"gasf/internal/region"
	"gasf/internal/tuple"
)

// Engine coordinates a group of filters over one source stream. It owns the
// global state of the two-stage process (Fig 2.4): group utilities of
// tuples, the current region of connected candidate sets, decided outputs,
// and the output scheduler.
//
// An Engine is single-source and not safe for concurrent use; the Solar
// layer runs one engine per source node.
type Engine struct {
	filters []filter.Filter
	opts    Options

	// util maps tuple sequence number to group utility: the number of
	// filters currently holding the tuple in a candidate set.
	util map[int]int
	// open tracks, per filter, the admitted tuples of the open
	// (unclosed) candidate set, in arrival order.
	open map[string][]*tuple.Tuple
	// tracker accumulates closed sets into regions.
	tracker region.Tracker
	// predictor models greedy run time for timely cuts (§3.3).
	predictor *predict.RunTimePredictor
	// accounted marks sets whose utility contribution has been removed.
	accounted map[*filter.CandidateSet]bool
	// decidedPicks records chosen outputs of sets decided before region
	// emission (PS sets and stateful sets), so the RG greedy can treat
	// them as singleton proxies.
	decidedPicks map[*filter.CandidateSet][]*tuple.Tuple
	// attached holds decided outputs awaiting their region's closure
	// (EarliestRegion strategy).
	attached map[*filter.CandidateSet][]pendingOut
	// batchBuf holds outputs awaiting the next batch boundary.
	batchBuf   []pendingOut
	batchCount int
	// stepBuf holds outputs decided during the current step under the
	// PerCandidateSet strategy; the multicaster sends decided outputs
	// after each input tuple (Fig 2.10, line 11), merging same-tuple
	// decisions made by different filters in the same step.
	stepBuf []pendingOut
	// chosen is the PS global state of recently chosen tuples
	// (heuristic 1), pruned by the chosen horizon.
	chosen  map[int]time.Time
	chosenQ []chosenRec

	distinct       map[int]bool
	maxReleasedSeq int
	result         Result
	now            time.Time
	started        bool
	lastTS         time.Time
	finished       bool
}

type chosenRec struct {
	seq int
	at  time.Time
}

// NewEngine builds an engine over the given filter group. For a group
// whose membership changes at run time, see NewDynamicEngine.
func NewEngine(filters []filter.Filter, opts Options) (*Engine, error) {
	return newEngine(filters, opts, false)
}

func newEngine(filters []filter.Filter, opts Options, allowEmpty bool) (*Engine, error) {
	opts, err := opts.validate()
	if err != nil {
		return nil, err
	}
	if len(filters) == 0 && !allowEmpty {
		return nil, fmt.Errorf("core: engine needs at least one filter")
	}
	seen := make(map[string]bool, len(filters))
	for _, f := range filters {
		if f == nil {
			return nil, fmt.Errorf("core: nil filter")
		}
		if seen[f.ID()] {
			return nil, fmt.Errorf("core: duplicate filter id %q", f.ID())
		}
		seen[f.ID()] = true
	}
	cp := make([]filter.Filter, len(filters))
	copy(cp, filters)
	return &Engine{
		filters:        cp,
		opts:           opts,
		util:           make(map[int]int),
		open:           make(map[string][]*tuple.Tuple),
		predictor:      predict.NewRunTimePredictor(opts.PredictWindow, opts.PredictMargin),
		accounted:      make(map[*filter.CandidateSet]bool),
		decidedPicks:   make(map[*filter.CandidateSet][]*tuple.Tuple),
		attached:       make(map[*filter.CandidateSet][]pendingOut),
		chosen:         make(map[int]time.Time),
		distinct:       make(map[int]bool),
		maxReleasedSeq: -1,
		result:         Result{Stats: Stats{PerFilter: make(map[string]int)}},
	}, nil
}

// Step feeds the next stream tuple through the group. Source timestamps
// must be strictly increasing — region closure detection depends on it.
func (e *Engine) Step(t *tuple.Tuple) error {
	if e.finished {
		return fmt.Errorf("core: Step after Finish")
	}
	if e.started && !t.TS.After(e.lastTS) {
		return fmt.Errorf("core: tuple %d timestamp %v not after previous %v", t.Seq, t.TS, e.lastTS)
	}
	start := time.Now()
	e.now = t.TS

	// Stage one: every filter admits candidates (Fig 2.4). Under PS with
	// cuts, each filter first checks whether admitting the new tuple
	// would violate its time constraint and cuts beforehand (Fig 3.5:
	// "admitting a new tuple will likely violate the time constraint").
	for _, f := range e.filters {
		if e.opts.Cuts && e.opts.Algorithm == PS {
			if list := e.open[f.ID()]; len(list) > 0 && t.TS.Sub(list[0].TS) >= e.opts.MaxDelay {
				if err := e.cutFilter(f); err != nil {
					return err
				}
			}
		}
		ev, err := f.Process(t)
		if err != nil {
			return fmt.Errorf("core: filter %s: %w", f.ID(), err)
		}
		if err := e.apply(f, t, ev); err != nil {
			return err
		}
	}

	// Timely cuts for RG (Fig 3.3): test the group time constraint after
	// the group processed the tuple.
	if e.opts.Cuts && e.opts.Algorithm == RG {
		if err := e.maybeCut(); err != nil {
			return err
		}
	}

	// Stage two: emit regions that can no longer grow and decide their
	// outputs.
	if err := e.emitRegions(); err != nil {
		return err
	}

	// Release outputs decided this step (PerCandidateSet strategy).
	if len(e.stepBuf) > 0 {
		e.mergeRelease(e.stepBuf, e.now)
		e.stepBuf = e.stepBuf[:0]
	}

	// Batched output boundary.
	if e.opts.Strategy == Batched {
		e.batchCount++
		if e.batchCount >= e.opts.BatchSize {
			e.batchCount = 0
			e.releaseBatch()
		}
	}

	e.started, e.lastTS = true, t.TS
	e.result.Stats.Inputs++
	e.result.Stats.CPU += time.Since(start)
	return nil
}

// Finish flushes all open and pending state at end of stream and releases
// every remaining output.
func (e *Engine) Finish() error {
	if e.finished {
		return nil
	}
	start := time.Now()
	for _, f := range e.filters {
		cs, dismissed := f.Cut()
		e.applyDismissals(f.ID(), dismissed)
		if cs != nil {
			e.removeOpenMembers(f.ID(), cs)
			if err := e.handleClosed(f, cs); err != nil {
				return err
			}
		}
	}
	for _, r := range e.tracker.Flush() {
		if err := e.handleRegion(r); err != nil {
			return err
		}
	}
	if len(e.stepBuf) > 0 {
		e.mergeRelease(e.stepBuf, e.now)
		e.stepBuf = nil
	}
	e.releaseBatch()
	e.finished = true
	e.result.Stats.CPU += time.Since(start)
	return nil
}

// Result returns the accumulated transmissions and statistics. Call after
// Finish for complete results.
func (e *Engine) Result() *Result { return &e.result }

// Run drives a complete series through a fresh engine.
func Run(filters []filter.Filter, sr *tuple.Series, opts Options) (*Result, error) {
	e, err := NewEngine(filters, opts)
	if err != nil {
		return nil, err
	}
	for i := 0; i < sr.Len(); i++ {
		if err := e.Step(sr.At(i)); err != nil {
			return nil, err
		}
	}
	if err := e.Finish(); err != nil {
		return nil, err
	}
	return e.Result(), nil
}

// apply folds one filter event into the global state, following stateful
// decision loops to completion.
func (e *Engine) apply(f filter.Filter, t *tuple.Tuple, ev filter.Event) error {
	for {
		if ev.Admitted {
			e.util[t.Seq]++
			e.open[f.ID()] = append(e.open[f.ID()], t)
		}
		e.applyDismissals(f.ID(), ev.Dismissed)
		if ev.Closed == nil {
			return nil
		}
		cs := ev.Closed
		e.removeOpenMembers(f.ID(), cs)
		if !f.Stateful() {
			return e.handleClosed(f, cs)
		}
		// Stateful sets are decided immediately (§2.3.3); the filter
		// rebases and may re-admit the closing tuple.
		picks := e.decideSet(cs)
		e.stageDecided(cs, picks)
		e.tracker.Add(cs)
		ev = f.ObserveChosen(picks)
	}
}

// handleClosed routes a freshly closed candidate set: PS decides it now;
// RG leaves it for the region greedy. Stateful sets never reach here.
func (e *Engine) handleClosed(f filter.Filter, cs *filter.CandidateSet) error {
	if f.Stateful() {
		// Reached only from cuts and Finish, where no tuple is pending
		// inside the filter: ObserveChosen just rebases.
		picks := e.decideSet(cs)
		e.stageDecided(cs, picks)
		e.tracker.Add(cs)
		if ev := f.ObserveChosen(picks); ev.Admitted || ev.Closed != nil || len(ev.Dismissed) > 0 {
			return fmt.Errorf("core: filter %s produced events while rebasing after a cut", f.ID())
		}
		return nil
	}
	if e.opts.Algorithm == PS {
		picks := e.decideSet(cs)
		e.stageDecided(cs, picks)
	}
	e.tracker.Add(cs)
	return nil
}

// applyDismissals decrements utilities and open tracking for dismissed
// tuples.
func (e *Engine) applyDismissals(filterID string, dismissed []*tuple.Tuple) {
	for _, d := range dismissed {
		e.decUtil(d.Seq)
		e.removeOpen(filterID, d.Seq)
	}
}

func (e *Engine) decUtil(seq int) {
	if n := e.util[seq] - 1; n > 0 {
		e.util[seq] = n
	} else {
		delete(e.util, seq)
	}
}

func (e *Engine) removeOpen(filterID string, seq int) {
	list := e.open[filterID]
	for i, t := range list {
		if t.Seq == seq {
			e.open[filterID] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// removeOpenMembers drops a closed set's members from the filter's open
// tracking.
func (e *Engine) removeOpenMembers(filterID string, cs *filter.CandidateSet) {
	member := make(map[int]bool, len(cs.Members))
	for _, m := range cs.Members {
		member[m.Seq] = true
	}
	list := e.open[filterID]
	keep := list[:0]
	for _, t := range list {
		if !member[t.Seq] {
			keep = append(keep, t)
		}
	}
	e.open[filterID] = keep
}

// openMins returns the earliest admitted timestamp of each filter's open
// set.
func (e *Engine) openMins() []time.Time {
	var mins []time.Time
	for _, f := range e.filters {
		if list := e.open[f.ID()]; len(list) > 0 {
			mins = append(mins, list[0].TS)
		}
	}
	return mins
}

// emitRegions extracts final regions and decides/releases their outputs.
func (e *Engine) emitRegions() error {
	regions := e.tracker.Ready(e.openMins(), e.now)
	for _, r := range regions {
		if err := e.handleRegion(r); err != nil {
			return err
		}
	}
	return nil
}

// handleRegion decides (RG) and/or releases (per strategy) a closed
// region's outputs.
func (e *Engine) handleRegion(r *region.Region) error {
	st := &e.result.Stats
	st.Regions++
	if r.ClosedByCut() {
		st.RegionsCut++
	}
	st.RegionTupleSum += r.TupleCount()

	// Collect attached decided outputs (EarliestRegion holds them until
	// the region closes).
	var outs []pendingOut
	for _, cs := range r.Sets {
		if held, ok := e.attached[cs]; ok {
			outs = append(outs, held...)
			delete(e.attached, cs)
		}
	}

	// Undecided sets (RG stateless) are decided by the greedy hitting
	// set; already-decided sets join as singleton proxies so sharing
	// with their chosen tuples is considered (§2.3.3).
	var undecided []*filter.CandidateSet
	var greedySets []*filter.CandidateSet
	proxy := make(map[*filter.CandidateSet]bool)
	for _, cs := range r.Sets {
		if picks, ok := e.decidedPicks[cs]; ok {
			p := &filter.CandidateSet{
				Owner:      cs.Owner,
				Ordinal:    cs.Ordinal,
				Members:    picks,
				PickDegree: len(picks),
			}
			proxy[p] = true
			greedySets = append(greedySets, p)
			delete(e.decidedPicks, cs)
			continue
		}
		undecided = append(undecided, cs)
		greedySets = append(greedySets, cs)
	}
	if len(undecided) > 0 {
		start := time.Now()
		picks, err := hitting.GreedyWithOptions(greedySets, e.opts.Ties == PreferEarliest)
		elapsed := time.Since(start)
		if err != nil {
			return fmt.Errorf("core: deciding region: %w", err)
		}
		st.GreedyCPU += elapsed
		e.predictor.Observe(r.TupleCount(), elapsed)
		for _, cs := range undecided {
			if !e.accounted[cs] {
				for _, m := range cs.Members {
					e.decUtil(m.Seq)
				}
			}
		}
		for _, pk := range picks {
			var dests []string
			seen := make(map[string]bool)
			for _, cs := range pk.Sets {
				if proxy[cs] || seen[cs.Owner] {
					continue
				}
				seen[cs.Owner] = true
				dests = append(dests, cs.Owner)
			}
			if len(dests) > 0 {
				outs = append(outs, pendingOut{t: pk.Tuple, dests: dests, decidedAt: e.now})
			}
		}
	}
	for _, cs := range r.Sets {
		delete(e.accounted, cs)
	}

	switch e.opts.Strategy {
	case Batched:
		e.batchBuf = append(e.batchBuf, outs...)
	default:
		e.mergeRelease(outs, e.now)
	}
	if e.opts.EmitPunctuations {
		_, max := r.Cover()
		e.result.Punctuations = append(e.result.Punctuations, Punctuation{At: e.now, Horizon: max})
	}
	return nil
}

// releaseBatch releases the batched output buffer.
func (e *Engine) releaseBatch() {
	if len(e.batchBuf) == 0 {
		return
	}
	e.mergeRelease(e.batchBuf, e.now)
	e.batchBuf = nil
}

// decideSet chooses outputs for one candidate set with the PS heuristics
// (Fig 2.10): prefer tuples already chosen by other filters, then the
// highest group utility, ties broken toward the more recent tuple. It
// removes the set's utility contribution and records the choices in the
// group state.
func (e *Engine) decideSet(cs *filter.CandidateSet) []*tuple.Tuple {
	eligible := cs.Eligible()
	k := cs.PickDegree
	if k <= 0 {
		k = 1
	}
	if k > len(eligible) {
		k = len(eligible)
	}
	used := make(map[int]bool, k)
	picks := make([]*tuple.Tuple, 0, k)
	for len(picks) < k {
		var best *tuple.Tuple
		// Heuristic 1: a tuple already chosen by another filter.
		for _, m := range eligible {
			if used[m.Seq] {
				continue
			}
			if _, ok := e.chosen[m.Seq]; !ok {
				continue
			}
			if e.prefer(m, best) {
				best = m
			}
		}
		// Heuristic 2: the highest group utility.
		if best == nil {
			bestU := -1
			for _, m := range eligible {
				if used[m.Seq] {
					continue
				}
				u := e.util[m.Seq]
				if u > bestU || (u == bestU && e.prefer(m, best)) {
					best, bestU = m, u
				}
			}
		}
		if best == nil {
			break
		}
		used[best.Seq] = true
		picks = append(picks, best)
	}
	if !e.accounted[cs] {
		for _, m := range cs.Members {
			e.decUtil(m.Seq)
		}
		e.accounted[cs] = true
	}
	for _, p := range picks {
		e.recordChosen(p)
	}
	return picks
}

// prefer reports whether m beats best under the engine's tie-break rule;
// a nil best always loses.
func (e *Engine) prefer(m, best *tuple.Tuple) bool {
	if best == nil {
		return true
	}
	if e.opts.Ties == PreferEarliest {
		return m.TS.Before(best.TS) || (m.TS.Equal(best.TS) && m.Seq < best.Seq)
	}
	return m.TS.After(best.TS) || (m.TS.Equal(best.TS) && m.Seq > best.Seq)
}

// stageDecided routes a decided set's outputs per the output strategy and
// records the picks for region-time proxying.
func (e *Engine) stageDecided(cs *filter.CandidateSet, picks []*tuple.Tuple) {
	e.decidedPicks[cs] = picks
	outs := make([]pendingOut, 0, len(picks))
	for _, p := range picks {
		outs = append(outs, pendingOut{t: p, dests: []string{cs.Owner}, decidedAt: e.now})
	}
	switch e.opts.Strategy {
	case PerCandidateSet:
		e.stepBuf = append(e.stepBuf, outs...)
	case Batched:
		e.batchBuf = append(e.batchBuf, outs...)
	default: // EarliestRegion: hold until the region closes.
		e.attached[cs] = outs
	}
}

// recordChosen adds a pick to the PS chosen-tuple memory and prunes
// entries beyond the horizon.
func (e *Engine) recordChosen(t *tuple.Tuple) {
	e.chosen[t.Seq] = e.now
	e.chosenQ = append(e.chosenQ, chosenRec{seq: t.Seq, at: e.now})
	cutoff := e.now.Add(-e.opts.ChosenHorizon)
	for len(e.chosenQ) > 0 && e.chosenQ[0].at.Before(cutoff) {
		rec := e.chosenQ[0]
		e.chosenQ = e.chosenQ[1:]
		if at, ok := e.chosen[rec.seq]; ok && !at.After(rec.at) {
			delete(e.chosen, rec.seq)
		}
	}
}

// maybeCut tests the RG group time constraint and force-closes all open
// sets when it is about to be violated (Fig 3.3). PS cuts are handled
// per-filter before each Process call in Step.
func (e *Engine) maybeCut() error {
	// Region-based cuts: elapsed region span plus the predicted greedy
	// run time for one more tuple must stay within the budget.
	oldest, ok := e.oldestActive()
	if !ok {
		return nil
	}
	size := e.activeTupleCount()
	predicted := e.predictor.Predict(size + 1)
	if e.now.Sub(oldest)+predicted < e.opts.MaxDelay {
		return nil
	}
	for _, f := range e.filters {
		if err := e.cutFilter(f); err != nil {
			return err
		}
	}
	return nil
}

// cutFilter force-closes one filter's open candidate set.
func (e *Engine) cutFilter(f filter.Filter) error {
	cs, dismissed := f.Cut()
	e.applyDismissals(f.ID(), dismissed)
	if cs == nil {
		return nil
	}
	e.removeOpenMembers(f.ID(), cs)
	return e.handleClosed(f, cs)
}

// oldestActive returns the earliest timestamp across pending closed sets
// and open admissions — the start of the current region span.
func (e *Engine) oldestActive() (time.Time, bool) {
	oldest, ok := e.tracker.EarliestPending()
	for _, f := range e.filters {
		if list := e.open[f.ID()]; len(list) > 0 {
			if !ok || list[0].TS.Before(oldest) {
				oldest, ok = list[0].TS, true
			}
		}
	}
	return oldest, ok
}

// activeTupleCount approximates the size of the accumulating region: open
// admissions plus pending closed-set members (distinct per filter, may
// overlap across filters; the predictor only needs a consistent scale).
func (e *Engine) activeTupleCount() int {
	n := 0
	for _, f := range e.filters {
		n += len(e.open[f.ID()])
	}
	n += e.tracker.PendingSets()
	return n
}
