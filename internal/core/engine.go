package core

import (
	"fmt"
	"time"

	"gasf/internal/filter"
	"gasf/internal/hitting"
	"gasf/internal/predict"
	"gasf/internal/region"
	"gasf/internal/tuple"
)

// Engine coordinates a group of filters over one source stream. It owns the
// global state of the two-stage process (Fig 2.4): group utilities of
// tuples, the current region of connected candidate sets, decided outputs,
// and the output scheduler.
//
// An Engine is single-source and not safe for concurrent use; the Solar
// layer runs one engine per source node.
//
// The steady-state Step path is allocation-free: utilities live in a
// generational dense index, open-set tracking and scratch sets are engine-
// owned and cleared in place, and pendingOut buffers are recycled after
// release (see state.go and DESIGN.md §8).
type Engine struct {
	filters []filter.Filter
	opts    Options

	// util maps tuple sequence number to group utility: the number of
	// filters currently holding the tuple in a candidate set.
	util seqCounts
	// open tracks, per filter (parallel to filters), the admitted tuples
	// of the open (unclosed) candidate set, in arrival order.
	open [][]*tuple.Tuple
	// slot maps filter ID to its index in filters/open; rebuilt on the
	// (rare) membership changes so the per-tuple path never hashes IDs.
	slot map[string]int
	// tracker accumulates closed sets into regions.
	tracker region.Tracker
	// predictor models greedy run time for timely cuts (§3.3).
	predictor *predict.RunTimePredictor
	// accounted marks sets whose utility contribution has been removed.
	accounted map[*filter.CandidateSet]bool
	// decidedPicks records chosen outputs of sets decided before region
	// emission (PS sets and stateful sets), so the RG greedy can treat
	// them as singleton proxies.
	decidedPicks map[*filter.CandidateSet][]*tuple.Tuple
	// attached holds decided outputs awaiting their region's closure
	// (EarliestRegion strategy).
	attached map[*filter.CandidateSet][]pendingOut
	// batchBuf holds outputs awaiting the next batch boundary.
	batchBuf   []pendingOut
	batchCount int
	// stepBuf holds outputs decided during the current step under the
	// PerCandidateSet strategy; the multicaster sends decided outputs
	// after each input tuple (Fig 2.10, line 11), merging same-tuple
	// decisions made by different filters in the same step.
	stepBuf []pendingOut
	// chosen is the PS global state of recently chosen tuples
	// (heuristic 1), pruned by the chosen horizon.
	chosen     map[int]time.Time
	chosenQ    []chosenRec
	chosenHead int

	distinct       map[int]bool
	maxReleasedSeq int
	result         Result
	now            time.Time
	started        bool
	lastTS         time.Time
	finished       bool

	// Scratch state, owned by the engine and reused across steps.

	// seqScratch marks sequence numbers during batch removals; cleared in
	// place after each use.
	seqScratch map[int]struct{}
	// minsBuf backs openMins.
	minsBuf []time.Time
	// regionOuts stages one region's outputs during handleRegion.
	regionOuts []pendingOut
	// proxyBuf holds the singleton proxies of one region's greedy input.
	proxyBuf []*filter.CandidateSet
	// undecidedBuf / greedyBuf stage one region's set partition.
	undecidedBuf []*filter.CandidateSet
	greedyBuf    []*filter.CandidateSet
	// poFree recycles pendingOut buffers (see state.go).
	poFree [][]pendingOut
	// solver decides regions with reusable greedy state.
	solver hitting.Solver
	// rel* back mergeRelease (see output.go).
	relIdx   map[int]int
	relTrs   []Transmission
	relOrder []int
}

type chosenRec struct {
	seq int
	at  time.Time
}

// NewEngine builds an engine over the given filter group. For a group
// whose membership changes at run time, see NewDynamicEngine.
func NewEngine(filters []filter.Filter, opts Options) (*Engine, error) {
	return newEngine(filters, opts, false)
}

func newEngine(filters []filter.Filter, opts Options, allowEmpty bool) (*Engine, error) {
	opts, err := opts.validate()
	if err != nil {
		return nil, err
	}
	if len(filters) == 0 && !allowEmpty {
		return nil, fmt.Errorf("core: engine needs at least one filter")
	}
	slot := make(map[string]int, len(filters))
	for i, f := range filters {
		if f == nil {
			return nil, fmt.Errorf("core: nil filter")
		}
		if _, dup := slot[f.ID()]; dup {
			return nil, fmt.Errorf("core: duplicate filter id %q", f.ID())
		}
		slot[f.ID()] = i
	}
	cp := make([]filter.Filter, len(filters))
	copy(cp, filters)
	return &Engine{
		filters:        cp,
		opts:           opts,
		open:           make([][]*tuple.Tuple, len(cp)),
		slot:           slot,
		predictor:      predict.NewRunTimePredictor(opts.PredictWindow, opts.PredictMargin),
		accounted:      make(map[*filter.CandidateSet]bool),
		decidedPicks:   make(map[*filter.CandidateSet][]*tuple.Tuple),
		attached:       make(map[*filter.CandidateSet][]pendingOut),
		chosen:         make(map[int]time.Time),
		distinct:       make(map[int]bool),
		maxReleasedSeq: -1,
		result:         Result{Stats: Stats{PerFilter: make(map[string]int)}},
		seqScratch:     make(map[int]struct{}),
		relIdx:         make(map[int]int),
	}, nil
}

// Step feeds the next stream tuple through the group. Source timestamps
// must be strictly increasing — region closure detection depends on it.
func (e *Engine) Step(t *tuple.Tuple) error {
	if e.finished {
		return fmt.Errorf("core: Step after Finish")
	}
	if e.started && !t.TS.After(e.lastTS) {
		return fmt.Errorf("core: tuple %d timestamp %v not after previous %v", t.Seq, t.TS, e.lastTS)
	}
	start := time.Now()
	e.now = t.TS

	// Stage one: every filter admits candidates (Fig 2.4). Under PS with
	// cuts, each filter first checks whether admitting the new tuple
	// would violate its time constraint and cuts beforehand (Fig 3.5:
	// "admitting a new tuple will likely violate the time constraint").
	for i, f := range e.filters {
		if e.opts.Cuts && e.opts.Algorithm == PS {
			if list := e.open[i]; len(list) > 0 && t.TS.Sub(list[0].TS) >= e.opts.MaxDelay {
				if err := e.cutFilter(i); err != nil {
					return err
				}
			}
		}
		ev, err := f.Process(t)
		if err != nil {
			return fmt.Errorf("core: filter %s: %w", f.ID(), err)
		}
		if err := e.apply(i, f, t, ev); err != nil {
			return err
		}
	}

	// Timely cuts for RG (Fig 3.3): test the group time constraint after
	// the group processed the tuple.
	if e.opts.Cuts && e.opts.Algorithm == RG {
		if err := e.maybeCut(); err != nil {
			return err
		}
	}

	// Stage two: emit regions that can no longer grow and decide their
	// outputs.
	if err := e.emitRegions(); err != nil {
		return err
	}

	// Release outputs decided this step (PerCandidateSet strategy).
	if len(e.stepBuf) > 0 {
		e.mergeRelease(e.stepBuf, e.now)
		e.stepBuf = clearPending(e.stepBuf)
	}

	// Batched output boundary.
	if e.opts.Strategy == Batched {
		e.batchCount++
		if e.batchCount >= e.opts.BatchSize {
			e.batchCount = 0
			e.releaseBatch()
		}
	}

	e.started, e.lastTS = true, t.TS
	e.result.Stats.Inputs++
	e.result.Stats.CPU += time.Since(start)
	return nil
}

// Finish flushes all open and pending state at end of stream and releases
// every remaining output.
func (e *Engine) Finish() error {
	if e.finished {
		return nil
	}
	start := time.Now()
	for i, f := range e.filters {
		cs, dismissed := f.Cut()
		e.applyDismissals(i, dismissed)
		if cs != nil {
			e.removeOpenMembers(i, cs)
			if err := e.handleClosed(f, cs); err != nil {
				return err
			}
		}
	}
	for _, r := range e.tracker.Flush() {
		if err := e.handleRegion(r); err != nil {
			return err
		}
	}
	if len(e.stepBuf) > 0 {
		e.mergeRelease(e.stepBuf, e.now)
		e.stepBuf = clearPending(e.stepBuf)
	}
	e.releaseBatch()
	e.finished = true
	e.result.Stats.CPU += time.Since(start)
	return nil
}

// Result returns the accumulated transmissions and statistics. Call after
// Finish for complete results.
func (e *Engine) Result() *Result { return &e.result }

// Run drives a complete series through a fresh engine.
func Run(filters []filter.Filter, sr *tuple.Series, opts Options) (*Result, error) {
	e, err := NewEngine(filters, opts)
	if err != nil {
		return nil, err
	}
	for i := 0; i < sr.Len(); i++ {
		if err := e.Step(sr.At(i)); err != nil {
			return nil, err
		}
	}
	if err := e.Finish(); err != nil {
		return nil, err
	}
	return e.Result(), nil
}

// apply folds one filter event into the global state, following stateful
// decision loops to completion. i is the filter's slot.
func (e *Engine) apply(i int, f filter.Filter, t *tuple.Tuple, ev filter.Event) error {
	for {
		if ev.Admitted {
			e.util.inc(t.Seq)
			e.open[i] = append(e.open[i], t)
		}
		e.applyDismissals(i, ev.Dismissed)
		if ev.Closed == nil {
			return nil
		}
		cs := ev.Closed
		e.removeOpenMembers(i, cs)
		if !f.Stateful() {
			return e.handleClosed(f, cs)
		}
		// Stateful sets are decided immediately (§2.3.3); the filter
		// rebases and may re-admit the closing tuple.
		picks := e.decideSet(cs)
		e.stageDecided(cs, picks)
		e.tracker.Add(cs)
		ev = f.ObserveChosen(picks)
	}
}

// handleClosed routes a freshly closed candidate set: PS decides it now;
// RG leaves it for the region greedy. Stateful sets never reach here.
func (e *Engine) handleClosed(f filter.Filter, cs *filter.CandidateSet) error {
	if f.Stateful() {
		// Reached only from cuts and Finish, where no tuple is pending
		// inside the filter: ObserveChosen just rebases.
		picks := e.decideSet(cs)
		e.stageDecided(cs, picks)
		e.tracker.Add(cs)
		if ev := f.ObserveChosen(picks); ev.Admitted || ev.Closed != nil || len(ev.Dismissed) > 0 {
			return fmt.Errorf("core: filter %s produced events while rebasing after a cut", f.ID())
		}
		return nil
	}
	if e.opts.Algorithm == PS {
		picks := e.decideSet(cs)
		e.stageDecided(cs, picks)
	}
	e.tracker.Add(cs)
	return nil
}

// applyDismissals decrements utilities and open tracking for dismissed
// tuples. The open list is compacted in one in-place pass instead of one
// O(n) copy per dismissal.
func (e *Engine) applyDismissals(i int, dismissed []*tuple.Tuple) {
	switch len(dismissed) {
	case 0:
		return
	case 1:
		e.util.dec(dismissed[0].Seq)
		e.removeOpen(i, dismissed[0].Seq)
		return
	}
	clear(e.seqScratch)
	for _, d := range dismissed {
		e.util.dec(d.Seq)
		e.seqScratch[d.Seq] = struct{}{}
	}
	list := e.open[i]
	keep := list[:0]
	for _, t := range list {
		if _, drop := e.seqScratch[t.Seq]; !drop {
			keep = append(keep, t)
		}
	}
	for j := len(keep); j < len(list); j++ {
		list[j] = nil
	}
	e.open[i] = keep
}

func (e *Engine) removeOpen(i, seq int) {
	list := e.open[i]
	for j, t := range list {
		if t.Seq == seq {
			copy(list[j:], list[j+1:])
			list[len(list)-1] = nil
			e.open[i] = list[:len(list)-1]
			return
		}
	}
}

// removeOpenMembers drops a closed set's members from the filter's open
// tracking.
func (e *Engine) removeOpenMembers(i int, cs *filter.CandidateSet) {
	clear(e.seqScratch)
	for _, m := range cs.Members {
		e.seqScratch[m.Seq] = struct{}{}
	}
	list := e.open[i]
	keep := list[:0]
	for _, t := range list {
		if _, member := e.seqScratch[t.Seq]; !member {
			keep = append(keep, t)
		}
	}
	for j := len(keep); j < len(list); j++ {
		list[j] = nil
	}
	e.open[i] = keep
}

// openMins returns the earliest admitted timestamp of each filter's open
// set. The returned slice is engine-owned scratch, valid until the next
// call.
func (e *Engine) openMins() []time.Time {
	mins := e.minsBuf[:0]
	for i := range e.filters {
		if list := e.open[i]; len(list) > 0 {
			mins = append(mins, list[0].TS)
		}
	}
	e.minsBuf = mins
	return mins
}

// emitRegions extracts final regions and decides/releases their outputs.
func (e *Engine) emitRegions() error {
	regions := e.tracker.Ready(e.openMins(), e.now)
	for _, r := range regions {
		if err := e.handleRegion(r); err != nil {
			return err
		}
	}
	return nil
}

// handleRegion decides (RG) and/or releases (per strategy) a closed
// region's outputs.
func (e *Engine) handleRegion(r *region.Region) error {
	st := &e.result.Stats
	st.Regions++
	if r.ClosedByCut() {
		st.RegionsCut++
	}
	size := r.TupleCount()
	st.RegionTupleSum += size

	// Collect attached decided outputs (EarliestRegion holds them until
	// the region closes). outs is engine-owned scratch; its contents are
	// copied on release.
	outs := e.regionOuts[:0]
	for _, cs := range r.Sets {
		if held, ok := e.attached[cs]; ok {
			outs = append(outs, held...)
			delete(e.attached, cs)
			e.putPOBuf(held)
		}
	}

	// Undecided sets (RG stateless) are decided by the greedy hitting
	// set; already-decided sets join as singleton proxies so sharing
	// with their chosen tuples is considered (§2.3.3).
	undecided := e.undecidedBuf[:0]
	greedySets := e.greedyBuf[:0]
	proxies := e.proxyBuf[:0]
	for _, cs := range r.Sets {
		if picks, ok := e.decidedPicks[cs]; ok {
			p := &filter.CandidateSet{
				Owner:      cs.Owner,
				Ordinal:    cs.Ordinal,
				Members:    picks,
				PickDegree: len(picks),
			}
			proxies = append(proxies, p)
			greedySets = append(greedySets, p)
			delete(e.decidedPicks, cs)
			continue
		}
		undecided = append(undecided, cs)
		greedySets = append(greedySets, cs)
	}
	if len(undecided) > 0 {
		start := time.Now()
		picks, err := e.solver.Greedy(greedySets, e.opts.Ties == PreferEarliest)
		elapsed := time.Since(start)
		if err != nil {
			e.saveRegionScratch(outs, undecided, greedySets, proxies)
			return fmt.Errorf("core: deciding region: %w", err)
		}
		st.GreedyCPU += elapsed
		e.predictor.Observe(size, elapsed)
		for _, cs := range undecided {
			if !e.accounted[cs] {
				for _, m := range cs.Members {
					e.util.dec(m.Seq)
				}
			}
		}
		for _, pk := range picks {
			var dests []string
			for _, cs := range pk.Sets {
				if isProxy(proxies, cs) || containsLabel(dests, cs.Owner) {
					continue
				}
				dests = append(dests, cs.Owner)
			}
			if len(dests) > 0 {
				outs = append(outs, pendingOut{t: pk.Tuple, dests: dests, decidedAt: e.now})
			}
		}
	}
	for _, cs := range r.Sets {
		delete(e.accounted, cs)
	}

	switch e.opts.Strategy {
	case Batched:
		e.batchBuf = append(e.batchBuf, outs...)
	default:
		e.mergeRelease(outs, e.now)
	}
	if e.opts.EmitPunctuations {
		_, max := r.Cover()
		e.result.Punctuations = append(e.result.Punctuations, Punctuation{At: e.now, Horizon: max})
	}
	e.saveRegionScratch(outs, undecided, greedySets, proxies)
	return nil
}

// saveRegionScratch returns handleRegion's scratch slices to the engine
// with their contents cleared, so recycled buffers do not pin tuples or
// candidate sets past release.
func (e *Engine) saveRegionScratch(outs []pendingOut, undecided, greedy, proxies []*filter.CandidateSet) {
	for i := range outs {
		outs[i] = pendingOut{}
	}
	clearSets(undecided)
	clearSets(greedy)
	clearSets(proxies)
	e.regionOuts = outs[:0]
	e.undecidedBuf = undecided[:0]
	e.greedyBuf = greedy[:0]
	e.proxyBuf = proxies[:0]
}

func clearSets(s []*filter.CandidateSet) {
	for i := range s {
		s[i] = nil
	}
}

// isProxy reports whether cs is one of the region's singleton proxies;
// region set counts are small, so a scan beats a per-region map.
func isProxy(proxies []*filter.CandidateSet, cs *filter.CandidateSet) bool {
	for _, p := range proxies {
		if p == cs {
			return true
		}
	}
	return false
}

// containsLabel reports whether the destination list already carries the
// label.
func containsLabel(dests []string, label string) bool {
	for _, d := range dests {
		if d == label {
			return true
		}
	}
	return false
}

// releaseBatch releases the batched output buffer.
func (e *Engine) releaseBatch() {
	if len(e.batchBuf) == 0 {
		return
	}
	e.mergeRelease(e.batchBuf, e.now)
	e.batchBuf = clearPending(e.batchBuf)
}

// decideSet chooses outputs for one candidate set with the PS heuristics
// (Fig 2.10): prefer tuples already chosen by other filters, then the
// highest group utility, ties broken toward the more recent tuple. It
// removes the set's utility contribution and records the choices in the
// group state.
func (e *Engine) decideSet(cs *filter.CandidateSet) []*tuple.Tuple {
	eligible := cs.Eligible()
	k := cs.PickDegree
	if k <= 0 {
		k = 1
	}
	if k > len(eligible) {
		k = len(eligible)
	}
	picks := make([]*tuple.Tuple, 0, k)
	for len(picks) < k {
		var best *tuple.Tuple
		// Heuristic 1: a tuple already chosen by another filter.
		for _, m := range eligible {
			if picked(picks, m.Seq) {
				continue
			}
			if _, ok := e.chosen[m.Seq]; !ok {
				continue
			}
			if e.prefer(m, best) {
				best = m
			}
		}
		// Heuristic 2: the highest group utility.
		if best == nil {
			bestU := -1
			for _, m := range eligible {
				if picked(picks, m.Seq) {
					continue
				}
				u := e.util.get(m.Seq)
				if u > bestU || (u == bestU && e.prefer(m, best)) {
					best, bestU = m, u
				}
			}
		}
		if best == nil {
			break
		}
		picks = append(picks, best)
	}
	if !e.accounted[cs] {
		for _, m := range cs.Members {
			e.util.dec(m.Seq)
		}
		e.accounted[cs] = true
	}
	for _, p := range picks {
		e.recordChosen(p)
	}
	return picks
}

// picked reports whether the seq is already among the picks; pick degrees
// are tiny, so a linear scan beats a per-set map.
func picked(picks []*tuple.Tuple, seq int) bool {
	for _, p := range picks {
		if p.Seq == seq {
			return true
		}
	}
	return false
}

// prefer reports whether m beats best under the engine's tie-break rule;
// a nil best always loses.
func (e *Engine) prefer(m, best *tuple.Tuple) bool {
	if best == nil {
		return true
	}
	if e.opts.Ties == PreferEarliest {
		return m.TS.Before(best.TS) || (m.TS.Equal(best.TS) && m.Seq < best.Seq)
	}
	return m.TS.After(best.TS) || (m.TS.Equal(best.TS) && m.Seq > best.Seq)
}

// stageDecided routes a decided set's outputs per the output strategy and
// records the picks for region-time proxying.
func (e *Engine) stageDecided(cs *filter.CandidateSet, picks []*tuple.Tuple) {
	e.decidedPicks[cs] = picks
	switch e.opts.Strategy {
	case PerCandidateSet:
		for _, p := range picks {
			e.stepBuf = append(e.stepBuf, pendingOut{t: p, dest: cs.Owner, decidedAt: e.now})
		}
	case Batched:
		for _, p := range picks {
			e.batchBuf = append(e.batchBuf, pendingOut{t: p, dest: cs.Owner, decidedAt: e.now})
		}
	default: // EarliestRegion: hold until the region closes.
		outs := e.getPOBuf()
		for _, p := range picks {
			outs = append(outs, pendingOut{t: p, dest: cs.Owner, decidedAt: e.now})
		}
		e.attached[cs] = outs
	}
}

// recordChosen adds a pick to the PS chosen-tuple memory and prunes
// entries beyond the horizon. chosenQ is a head-indexed queue compacted in
// place so pruning does not abandon its backing array.
func (e *Engine) recordChosen(t *tuple.Tuple) {
	e.chosen[t.Seq] = e.now
	e.chosenQ = append(e.chosenQ, chosenRec{seq: t.Seq, at: e.now})
	cutoff := e.now.Add(-e.opts.ChosenHorizon)
	for e.chosenHead < len(e.chosenQ) && e.chosenQ[e.chosenHead].at.Before(cutoff) {
		rec := e.chosenQ[e.chosenHead]
		e.chosenHead++
		if at, ok := e.chosen[rec.seq]; ok && !at.After(rec.at) {
			delete(e.chosen, rec.seq)
		}
	}
	if e.chosenHead >= 1024 && e.chosenHead > len(e.chosenQ)-e.chosenHead {
		n := copy(e.chosenQ, e.chosenQ[e.chosenHead:])
		e.chosenQ, e.chosenHead = e.chosenQ[:n], 0
	}
}

// maybeCut tests the RG group time constraint and force-closes all open
// sets when it is about to be violated (Fig 3.3). PS cuts are handled
// per-filter before each Process call in Step.
func (e *Engine) maybeCut() error {
	// Region-based cuts: elapsed region span plus the predicted greedy
	// run time for one more tuple must stay within the budget.
	oldest, ok := e.oldestActive()
	if !ok {
		return nil
	}
	size := e.activeTupleCount()
	predicted := e.predictor.Predict(size + 1)
	if e.now.Sub(oldest)+predicted < e.opts.MaxDelay {
		return nil
	}
	for i := range e.filters {
		if err := e.cutFilter(i); err != nil {
			return err
		}
	}
	return nil
}

// cutFilter force-closes the open candidate set of the filter at slot i.
func (e *Engine) cutFilter(i int) error {
	f := e.filters[i]
	cs, dismissed := f.Cut()
	e.applyDismissals(i, dismissed)
	if cs == nil {
		return nil
	}
	e.removeOpenMembers(i, cs)
	return e.handleClosed(f, cs)
}

// oldestActive returns the earliest timestamp across pending closed sets
// and open admissions — the start of the current region span.
func (e *Engine) oldestActive() (time.Time, bool) {
	oldest, ok := e.tracker.EarliestPending()
	for i := range e.filters {
		if list := e.open[i]; len(list) > 0 {
			if !ok || list[0].TS.Before(oldest) {
				oldest, ok = list[0].TS, true
			}
		}
	}
	return oldest, ok
}

// activeTupleCount approximates the size of the accumulating region: open
// admissions plus pending closed-set members (distinct per filter, may
// overlap across filters; the predictor only needs a consistent scale).
func (e *Engine) activeTupleCount() int {
	n := 0
	for i := range e.filters {
		n += len(e.open[i])
	}
	n += e.tracker.PendingSets()
	return n
}
