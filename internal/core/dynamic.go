package core

import (
	"fmt"

	"gasf/internal/filter"
)

// Dynamic group membership: subscriptions may join and leave a live engine
// at a tuple boundary (between two Step calls, or before the first). The
// networked server uses this to re-derive the group when an application
// subscribes or unsubscribes mid-stream (§4.3) without restarting the
// source's engine or disturbing other sources.
//
// An engine whose membership never changes behaves identically whether it
// was built with NewEngine(filters, opts) or with NewDynamicEngine(opts)
// followed by AddFilter calls in the same order — the dynamic-membership
// equivalence tests assert byte-identical released output.

// NewDynamicEngine builds an engine with an initially empty filter group,
// for workloads where subscriptions arrive after the stream is live. An
// empty engine consumes tuples without admitting any candidates (and
// therefore releases nothing) until the first AddFilter.
func NewDynamicEngine(opts Options) (*Engine, error) {
	return newEngine(nil, opts, true)
}

// AddFilter joins a filter to the live group at a tuple boundary. The
// filter starts with no open state and sees only tuples fed after the
// call; the tuples already streamed are not replayed. Filter IDs must stay
// unique within the group (an application that left may rejoin under the
// same ID).
func (e *Engine) AddFilter(f filter.Filter) error {
	if f == nil {
		return fmt.Errorf("core: nil filter")
	}
	if e.finished {
		return fmt.Errorf("core: AddFilter after Finish")
	}
	if _, dup := e.slot[f.ID()]; dup {
		return fmt.Errorf("core: duplicate filter id %q", f.ID())
	}
	e.slot[f.ID()] = len(e.filters)
	e.filters = append(e.filters, f)
	e.open = append(e.open, nil)
	return nil
}

// RemoveFilter detaches the identified filter from the live group at a
// tuple boundary. Its open candidate set is force-closed through the
// normal cut path, so outputs the group already owes the departed
// application are still decided and released (the dissemination layer is
// free to drop deliveries addressed to a subscriber that is gone), and
// regions the departed filter was holding open are re-tested for closure
// immediately.
func (e *Engine) RemoveFilter(id string) error {
	if e.finished {
		return fmt.Errorf("core: RemoveFilter after Finish")
	}
	idx, ok := e.slot[id]
	if !ok {
		return fmt.Errorf("core: no filter %q in the group", id)
	}
	// Cut while the slot is still live, so the cut path can update the
	// departing filter's open tracking through the normal machinery.
	if err := e.cutFilter(idx); err != nil {
		return err
	}
	e.filters = append(e.filters[:idx], e.filters[idx+1:]...)
	e.open = append(e.open[:idx], e.open[idx+1:]...)
	delete(e.slot, id)
	for i := idx; i < len(e.filters); i++ {
		e.slot[e.filters[i].ID()] = i
	}
	if !e.started {
		return nil
	}
	// The departed filter's open set may have been the only thing keeping
	// the current region extendable; close and release what it unblocked,
	// exactly as the tail of Step would.
	if err := e.emitRegions(); err != nil {
		return err
	}
	if len(e.stepBuf) > 0 {
		e.mergeRelease(e.stepBuf, e.now)
		e.stepBuf = clearPending(e.stepBuf)
	}
	return nil
}

// FilterIDs returns the IDs of the current group members, in group order.
func (e *Engine) FilterIDs() []string {
	ids := make([]string, len(e.filters))
	for i, f := range e.filters {
		ids[i] = f.ID()
	}
	return ids
}
