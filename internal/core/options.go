// Package core implements the group-aware stream filtering engine: the
// two-stage process of §2.3.1, the region-based greedy algorithm (RG,
// Fig 2.6), the per-candidate-set greedy algorithm (PS, Fig 2.10), timely
// cuts (Chapter 3, Fig 3.3) and the output-scheduling strategies of §3.4.
//
// The engine consumes one source stream, drives a group of filters over
// it, coordinates their candidate sets through a shared global state
// (group utilities, decided outputs), and emits multiplexed transmissions
// labeled with destination applications, ready for tuple-level multicast.
package core

import (
	"fmt"
	"time"
)

// Algorithm selects the group-aware decision algorithm.
type Algorithm int

const (
	// RG is the region-based greedy algorithm (Fig 2.6): outputs are
	// decided by a greedy hitting set over each closed region.
	RG Algorithm = iota
	// PS is the per-candidate-set greedy algorithm (Fig 2.10): each
	// filter decides its output as soon as its candidate set closes,
	// preferring tuples already chosen by other filters.
	PS
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case RG:
		return "RG"
	case PS:
		return "PS"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// OutputStrategy selects when decided outputs are released to the
// multicaster (§3.4).
type OutputStrategy int

const (
	// EarliestRegion releases outputs when their region closes — the
	// earliest possible time that preserves solution optimality. It is
	// the default for both algorithms.
	EarliestRegion OutputStrategy = iota
	// PerCandidateSet releases each output as soon as it is decided;
	// only meaningful under PS (and for stateful sets), where decisions
	// precede region closure. It lowers average latency at the cost of
	// possible disorder within a region.
	PerCandidateSet
	// Batched releases outputs every BatchSize input tuples.
	Batched
)

// String implements fmt.Stringer.
func (s OutputStrategy) String() string {
	switch s {
	case EarliestRegion:
		return "earliest-region"
	case PerCandidateSet:
		return "per-candidate-set"
	case Batched:
		return "batched"
	default:
		return fmt.Sprintf("OutputStrategy(%d)", int(s))
	}
}

// TieBreak selects how utility ties are resolved; the paper prefers the
// most recent tuple to favor temporal freshness. Earliest is provided for
// the ablation study.
type TieBreak int

const (
	// PreferLatest picks the tuple with the latest timestamp on utility
	// ties (the paper's rule).
	PreferLatest TieBreak = iota
	// PreferEarliest picks the earliest; ablation only.
	PreferEarliest
)

// DefaultChosenHorizon bounds how long the PS global state remembers
// chosen tuples for its first heuristic.
const DefaultChosenHorizon = 10 * time.Second

// Options configures an Engine. The zero value is a valid RG engine with
// the earliest-region output strategy and no cuts.
type Options struct {
	// Algorithm selects RG or PS.
	Algorithm Algorithm
	// Strategy selects the output-scheduling strategy.
	Strategy OutputStrategy
	// BatchSize is the release period, in input tuples, for the Batched
	// strategy.
	BatchSize int
	// Cuts enables timely cuts with the MaxDelay group time constraint.
	Cuts bool
	// MaxDelay is the maximum tolerated delay contributed by filtering
	// (the conjunction of the group's time requirements, §3.1).
	MaxDelay time.Duration
	// PredictWindow is the observation window of the greedy run-time
	// predictor; 0 means the paper's default of ten regions.
	PredictWindow int
	// PredictMargin is added to run-time predictions for conservatism.
	PredictMargin time.Duration
	// MulticastDelay is the constant delivery cost added to every
	// latency sample, standing in for the measured application-level
	// multicast invocation cost (§4.1.2).
	MulticastDelay time.Duration
	// Ties selects the utility tie-break rule.
	Ties TieBreak
	// ChosenHorizon bounds the PS chosen-tuple memory; 0 means
	// DefaultChosenHorizon.
	ChosenHorizon time.Duration
	// EmitPunctuations mixes region-closure punctuations into the
	// result so downstream operators can bound reordering (§3.4).
	EmitPunctuations bool

	// The following knobs configure the sharded multi-source runtime
	// (internal/shard) layered above single-source engines. They do not
	// affect a single Engine; the solar layer derives its system-wide
	// runtime configuration from them by taking the maximum across the
	// registered sources.

	// ShardCount is the number of worker shards sources are
	// hash-partitioned onto; 0 means GOMAXPROCS.
	ShardCount int
	// QueueDepth is the bounded per-shard input queue length; feeding a
	// full queue blocks (backpressure). 0 means the runtime default.
	QueueDepth int
	// FlushBatch is the number of released transmissions a shard
	// accumulates before flushing them to the delivery sink; shards also
	// flush whenever their queue idles, so the batch bounds throughput
	// cost, not latency. 0 means the runtime default.
	FlushBatch int
}

// validate normalizes and checks the options.
func (o Options) validate() (Options, error) {
	if o.Algorithm != RG && o.Algorithm != PS {
		return o, fmt.Errorf("core: unknown algorithm %d", int(o.Algorithm))
	}
	switch o.Strategy {
	case EarliestRegion, PerCandidateSet:
	case Batched:
		if o.BatchSize <= 0 {
			return o, fmt.Errorf("core: batched strategy requires a positive BatchSize")
		}
	default:
		return o, fmt.Errorf("core: unknown output strategy %d", int(o.Strategy))
	}
	if o.Cuts && o.MaxDelay <= 0 {
		return o, fmt.Errorf("core: cuts require a positive MaxDelay")
	}
	if o.ChosenHorizon == 0 {
		o.ChosenHorizon = DefaultChosenHorizon
	}
	if o.ShardCount < 0 || o.QueueDepth < 0 || o.FlushBatch < 0 {
		return o, fmt.Errorf("core: negative shard runtime knob (shards %d, queue %d, flush %d)",
			o.ShardCount, o.QueueDepth, o.FlushBatch)
	}
	return o, nil
}
