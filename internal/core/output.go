package core

import (
	"sort"
	"time"

	"gasf/internal/tuple"
)

// Transmission is one multicast send: a tuple, the applications that must
// receive it, and the (virtual) time it was released to the multicaster.
// The multicast protocol labels each tuple with its destination list so it
// crosses any network link at most once (§1.2).
type Transmission struct {
	Tuple        *tuple.Tuple
	Destinations []string
	ReleasedAt   time.Time
}

// Punctuation is a control marker mixed into the output stream (§3.4):
// after a punctuation is released, no further output will carry a source
// timestamp at or before Horizon. Downstream operators use punctuations to
// bound reordering when outputs are released per candidate set.
type Punctuation struct {
	// At is the release time of the punctuation (region closure).
	At time.Time
	// Horizon is the end of the closed region's time cover.
	Horizon time.Time
}

// Stats aggregates the metrics of one engine run (§4.4).
type Stats struct {
	// Inputs is the number of tuples consumed.
	Inputs int
	// DistinctOutputs is the size of the union of all chosen outputs —
	// the numerator of the O/I ratio.
	DistinctOutputs int
	// Transmissions counts multicast send events.
	Transmissions int
	// Deliveries counts (tuple, destination) pairs delivered.
	Deliveries int
	// PerFilter counts deliveries per filter/application ID.
	PerFilter map[string]int
	// Regions counts closed regions; RegionsCut counts those closed (in
	// part) by a timely cut (Fig 4.11).
	Regions, RegionsCut int
	// RegionTupleSum accumulates region sizes in tuples, for average
	// region size diagnostics.
	RegionTupleSum int
	// CPU is the measured wall time of the engine's per-tuple
	// processing; GreedyCPU is the share spent in hitting-set decisions
	// (stage two), which feeds the run-time predictor.
	CPU, GreedyCPU time.Duration
	// Latencies holds one source-to-release latency sample per delivery
	// (including the MulticastDelay constant).
	Latencies []time.Duration
	// MultiplexDisorder counts transmissions whose tuple precedes (by
	// sequence) an already-released tuple — the disorder that eager
	// output strategies introduce in the multiplexed stream (§3.4).
	MultiplexDisorder int
}

// OIRatio returns output/input: distinct output tuples over input tuples.
func (s *Stats) OIRatio() float64 {
	if s.Inputs == 0 {
		return 0
	}
	return float64(s.DistinctOutputs) / float64(s.Inputs)
}

// CPUPerTuple returns mean processing time per input tuple.
func (s *Stats) CPUPerTuple() time.Duration {
	if s.Inputs == 0 {
		return 0
	}
	return s.CPU / time.Duration(s.Inputs)
}

// MeanLatency returns the mean delivery latency.
func (s *Stats) MeanLatency() time.Duration {
	if len(s.Latencies) == 0 {
		return 0
	}
	var sum time.Duration
	for _, l := range s.Latencies {
		sum += l
	}
	return sum / time.Duration(len(s.Latencies))
}

// MeanRegionTuples returns the average region size in tuples.
func (s *Stats) MeanRegionTuples() float64 {
	if s.Regions == 0 {
		return 0
	}
	return float64(s.RegionTupleSum) / float64(s.Regions)
}

// Result is the outcome of a complete run.
type Result struct {
	Transmissions []Transmission
	// Punctuations are emitted only when Options.EmitPunctuations is
	// set.
	Punctuations []Punctuation
	Stats        Stats
}

// pendingOut is a decided output waiting for its release time. The common
// single-destination case (a set decided for its owner) uses dest so
// staging a decision allocates nothing; region greedy picks shared by
// several owners carry dests.
type pendingOut struct {
	t         *tuple.Tuple
	dest      string
	dests     []string
	decidedAt time.Time
}

// mergeRelease folds pending outputs released at the same instant into
// transmissions, merging destination lists of the same tuple, and records
// stats. Destination lists are sorted for determinism. The grouping state
// (relIdx/relTrs/relOrder) is engine-owned scratch reused across calls;
// only the retained per-transmission destination list is allocated.
func (e *Engine) mergeRelease(outs []pendingOut, releasedAt time.Time) {
	if len(outs) == 0 {
		return
	}
	clear(e.relIdx)
	e.relOrder = e.relOrder[:0]
	trs := e.relTrs[:0]
	for _, po := range outs {
		i, ok := e.relIdx[po.t.Seq]
		if !ok {
			i = len(trs)
			if i < cap(trs) {
				// Reuse the slot, keeping its Destinations backing array.
				trs = trs[:i+1]
				trs[i].Tuple, trs[i].ReleasedAt = po.t, releasedAt
				trs[i].Destinations = trs[i].Destinations[:0]
			} else {
				trs = append(trs, Transmission{Tuple: po.t, ReleasedAt: releasedAt})
			}
			e.relIdx[po.t.Seq] = i
			e.relOrder = append(e.relOrder, po.t.Seq)
		}
		if po.dests != nil {
			trs[i].Destinations = append(trs[i].Destinations, po.dests...)
		} else {
			trs[i].Destinations = append(trs[i].Destinations, po.dest)
		}
	}
	sort.Ints(e.relOrder)
	for _, seq := range e.relOrder {
		tr := &trs[e.relIdx[seq]]
		sort.Strings(tr.Destinations)
		// The result retains the transmission; give it a right-sized
		// destination list so the scratch array stays recyclable.
		dests := make([]string, len(tr.Destinations))
		copy(dests, tr.Destinations)
		e.result.Transmissions = append(e.result.Transmissions,
			Transmission{Tuple: tr.Tuple, Destinations: dests, ReleasedAt: tr.ReleasedAt})
		st := &e.result.Stats
		if seq < e.maxReleasedSeq {
			st.MultiplexDisorder++
		} else {
			e.maxReleasedSeq = seq
		}
		st.Transmissions++
		st.Deliveries += len(dests)
		if !e.distinct[seq] {
			e.distinct[seq] = true
			st.DistinctOutputs++
		}
		lat := releasedAt.Sub(tr.Tuple.TS) + e.opts.MulticastDelay
		for _, d := range dests {
			st.PerFilter[d]++
			st.Latencies = append(st.Latencies, lat)
		}
	}
	// Drop tuple pointers from the scratch so released tuples are not
	// pinned by the next window's unused capacity.
	for i := range trs {
		trs[i].Tuple = nil
	}
	e.relTrs = trs[:0]
}
