package core

import (
	"testing"
	"time"

	"gasf/internal/filter"
	"gasf/internal/trace"
)

// TestPunctuationInvariant: after a punctuation is released, no later
// transmission carries a source timestamp at or before its horizon — the
// guarantee downstream operators rely on to bound reordering (§3.4).
func TestPunctuationInvariant(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 1500, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	stat, err := sr.MeanAbsChange("tmpr4")
	if err != nil {
		t.Fatal(err)
	}
	build := func() []filter.Filter {
		dc, _ := filter.NewDC1("dc", "tmpr4", 2*stat, stat)
		ss, _ := filter.NewSS("ss", "tmpr4", time.Second, 10*stat, 40, 15, filter.Random)
		return []filter.Filter{dc, ss}
	}
	for _, opts := range []Options{
		{Algorithm: RG, EmitPunctuations: true},
		{Algorithm: PS, Strategy: PerCandidateSet, EmitPunctuations: true},
	} {
		res, err := Run(build(), sr, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Punctuations) == 0 {
			t.Fatalf("%v: no punctuations emitted", opts.Algorithm)
		}
		for i := 1; i < len(res.Punctuations); i++ {
			if res.Punctuations[i].Horizon.Before(res.Punctuations[i-1].Horizon) {
				t.Errorf("punctuation horizons out of order at %d", i)
			}
		}
		for _, p := range res.Punctuations {
			for _, tr := range res.Transmissions {
				if tr.ReleasedAt.After(p.At) && !tr.Tuple.TS.After(p.Horizon) {
					t.Errorf("%v: tuple ts %v released at %v violates punctuation (at %v, horizon %v)",
						opts.Algorithm, tr.Tuple.TS, tr.ReleasedAt, p.At, p.Horizon)
				}
			}
		}
	}
}

// TestPunctuationsOffByDefault: no punctuations unless requested.
func TestPunctuationsOffByDefault(t *testing.T) {
	res, err := Run(paperFilters(t), trace.PaperExample(), Options{Algorithm: RG})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Punctuations) != 0 {
		t.Errorf("punctuations emitted without opt-in: %d", len(res.Punctuations))
	}
}

// TestMultiplexDisorderMetric: region-release keeps the multiplexed stream
// ordered; eager per-candidate-set release of a mixed DC+SS group
// reorders it, and the metric captures that.
func TestMultiplexDisorderMetric(t *testing.T) {
	sr, err := trace.NAMOS(trace.Config{N: 2000, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	stat, err := sr.MeanAbsChange("tmpr4")
	if err != nil {
		t.Fatal(err)
	}
	build := func() []filter.Filter {
		dc, _ := filter.NewDC1("dc", "tmpr4", 2*stat, stat)
		// The sampler decides whole 100-tuple segments at once, so its
		// eager picks reach back before the DC filter's latest output.
		ss, _ := filter.NewSS("ss", "tmpr4", time.Second, 10*stat, 40, 15, filter.Random)
		return []filter.Filter{dc, ss}
	}
	ordered, err := Run(build(), sr, Options{Algorithm: PS})
	if err != nil {
		t.Fatal(err)
	}
	if ordered.Stats.MultiplexDisorder != 0 {
		t.Errorf("earliest-region release produced disorder: %d", ordered.Stats.MultiplexDisorder)
	}
	eager, err := Run(build(), sr, Options{Algorithm: PS, Strategy: PerCandidateSet})
	if err != nil {
		t.Fatal(err)
	}
	if eager.Stats.MultiplexDisorder == 0 {
		t.Error("per-candidate-set release of a mixed group produced no disorder; metric suspect")
	}
}
