package core

import (
	"fmt"
	"sort"
	"time"

	"gasf/internal/filter"
	"gasf/internal/tuple"
)

// RunSelfInterested runs the paper's baseline: every filter selects its own
// outputs greedily, with no slack exploitation and no group coordination.
// The outputs of all filters are multiplexed (a tuple selected by several
// filters in the same step is transmitted once, labeled with all of them),
// which is exactly the "filter-then-multicast" configuration of Fig 1.2.
//
// Only the MulticastDelay option is honored; the other options configure
// group-aware machinery the baseline does not have.
func RunSelfInterested(filters []filter.Filter, sr *tuple.Series, opts Options) (*Result, error) {
	if len(filters) == 0 {
		return nil, fmt.Errorf("core: baseline needs at least one filter")
	}
	sis := make([]filter.SIFilter, len(filters))
	seen := make(map[string]bool, len(filters))
	for i, f := range filters {
		if seen[f.ID()] {
			return nil, fmt.Errorf("core: duplicate filter id %q", f.ID())
		}
		seen[f.ID()] = true
		sis[i] = f.SelfInterested()
	}

	res := &Result{Stats: Stats{PerFilter: make(map[string]int)}}
	distinct := make(map[int]bool)
	release := func(now time.Time, selections map[int]*siSel) {
		seqs := make([]int, 0, len(selections))
		for seq := range selections {
			seqs = append(seqs, seq)
		}
		sort.Ints(seqs)
		for _, seq := range seqs {
			sel := selections[seq]
			sort.Strings(sel.dests)
			tr := Transmission{Tuple: sel.t, Destinations: sel.dests, ReleasedAt: now}
			res.Transmissions = append(res.Transmissions, tr)
			res.Stats.Transmissions++
			res.Stats.Deliveries += len(sel.dests)
			if !distinct[sel.t.Seq] {
				distinct[sel.t.Seq] = true
				res.Stats.DistinctOutputs++
			}
			lat := now.Sub(sel.t.TS) + opts.MulticastDelay
			for _, d := range sel.dests {
				res.Stats.PerFilter[d]++
				res.Stats.Latencies = append(res.Stats.Latencies, lat)
			}
		}
	}

	var now time.Time
	for i := 0; i < sr.Len(); i++ {
		t := sr.At(i)
		now = t.TS
		start := time.Now()
		step := make(map[int]*siSel)
		for _, si := range sis {
			for _, sel := range si.Process(t) {
				addSel(step, sel, si.ID())
			}
		}
		res.Stats.Inputs++
		res.Stats.CPU += time.Since(start)
		release(now, step)
	}
	start := time.Now()
	final := make(map[int]*siSel)
	for _, si := range sis {
		for _, sel := range si.Flush() {
			addSel(final, sel, si.ID())
		}
	}
	res.Stats.CPU += time.Since(start)
	release(now, final)
	return res, nil
}

type siSel struct {
	t     *tuple.Tuple
	dests []string
}

func addSel(m map[int]*siSel, t *tuple.Tuple, dest string) {
	if s, ok := m[t.Seq]; ok {
		s.dests = append(s.dests, dest)
		return
	}
	m[t.Seq] = &siSel{t: t, dests: []string{dest}}
}
