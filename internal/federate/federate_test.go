package federate

import (
	"fmt"
	"strings"
	"testing"
)

func TestParseRole(t *testing.T) {
	cases := []struct {
		in   string
		want Role
		err  bool
	}{
		{"", RoleSingle, false},
		{"single", RoleSingle, false},
		{"core", RoleCore, false},
		{"edge", RoleEdge, false},
		{"hub", 0, true},
	}
	for _, c := range cases {
		got, err := ParseRole(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseRole(%q): want error", c.in)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseRole(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if RoleCore.String() != "core" || RoleEdge.String() != "edge" || RoleSingle.String() != "single" {
		t.Errorf("Role.String mismatch: %v %v %v", RoleSingle, RoleCore, RoleEdge)
	}
}

func TestParsePeers(t *testing.T) {
	nodes, err := ParsePeers(" core0 = 127.0.0.1:7070 , core1=127.0.0.1:7071, ")
	if err != nil {
		t.Fatalf("ParsePeers: %v", err)
	}
	if len(nodes) != 2 || nodes[0] != (Node{"core0", "127.0.0.1:7070"}) || nodes[1] != (Node{"core1", "127.0.0.1:7071"}) {
		t.Fatalf("ParsePeers = %v", nodes)
	}
	round, err := ParsePeers(FormatPeers(nodes))
	if err != nil || len(round) != 2 || round[0] != nodes[0] || round[1] != nodes[1] {
		t.Fatalf("FormatPeers round-trip = %v, %v", round, err)
	}
	for _, bad := range []string{"", "   ", "core0", "=addr", "core0=", "a=1,a=2"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q): want error", bad)
		}
	}
}

// Placement must be a pure function of the peer-name set: any permutation
// of the peer list, parsed anywhere, owns every source identically.
func TestTopologyDeterministic(t *testing.T) {
	a, err := NewTopology([]Node{{"c0", "x"}, {"c1", "y"}, {"c2", "z"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTopology([]Node{{"c2", "z"}, {"c0", "x"}, {"c1", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		src := fmt.Sprintf("source-%d", i)
		if a.Owner(src) != b.Owner(src) {
			t.Fatalf("owner of %q differs across permuted topologies", src)
		}
	}
}

func TestTopologyBalanceAndStability(t *testing.T) {
	three, err := NewTopology([]Node{{"c0", ""}, {"c1", ""}, {"c2", ""}})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	sources := make([]string, 3000)
	for i := range sources {
		sources[i] = fmt.Sprintf("sensor/%d", i)
		counts[three.Owner(sources[i]).Name]++
	}
	for name, n := range counts {
		// With 64 virtual points per node the split should be within a
		// loose factor of fair share; this guards against a broken ring
		// (everything on one node), not against statistical jitter.
		if n < len(sources)/6 {
			t.Errorf("core %s owns only %d/%d sources; ring badly unbalanced", name, n, len(sources))
		}
	}

	// Removing one core must only move the sources that core owned:
	// consistent hashing's whole point.
	two, err := NewTopology([]Node{{"c0", ""}, {"c1", ""}})
	if err != nil {
		t.Fatal(err)
	}
	moved := Moved(three, two, sources)
	for _, s := range moved {
		if three.Owner(s).Name != "c2" {
			t.Fatalf("source %q moved but was owned by %s, not the removed core", s, three.Owner(s).Name)
		}
	}
	if len(moved) != counts["c2"] {
		t.Fatalf("moved %d sources, want exactly the %d owned by the removed core", len(moved), counts["c2"])
	}
}

func TestTopologyErrors(t *testing.T) {
	if _, err := NewTopology(nil); err == nil {
		t.Error("NewTopology(nil): want error")
	}
	if _, err := NewTopology([]Node{{"a", "1"}, {"a", "2"}}); err == nil {
		t.Error("NewTopology duplicate names: want error")
	}
}

func TestGroupKeyDistinguishesFields(t *testing.T) {
	base := GroupKey("temps", "app", "DC1(v, 0.5, 0)")
	for _, other := range []string{
		GroupKey("temps2", "app", "DC1(v, 0.5, 0)"),
		GroupKey("temps", "app2", "DC1(v, 0.5, 0)"),
		GroupKey("temps", "app", "DC1(v, 0.25, 0)"),
	} {
		if other == base {
			t.Fatalf("distinct identities collide on group key %q", base)
		}
	}
	if GroupKey("temps", "app", "DC1(v, 0.5, 0)") != base {
		t.Fatal("identical identities must produce identical keys")
	}
}

func TestEdgeForRendezvous(t *testing.T) {
	edges := []Node{{"e0", ""}, {"e1", ""}, {"e2", ""}}
	if _, err := EdgeFor("k", nil); err == nil {
		t.Fatal("EdgeFor with no edges: want error")
	}
	// Stable and independent of list order.
	perm := []Node{edges[2], edges[0], edges[1]}
	hits := map[string]int{}
	for i := 0; i < 600; i++ {
		k := GroupKey(fmt.Sprintf("s%d", i%30), fmt.Sprintf("app%d", i), "SS(10ms)")
		a, err := EdgeFor(k, edges)
		if err != nil {
			t.Fatal(err)
		}
		b, err := EdgeFor(k, perm)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("EdgeFor(%q) depends on edge order: %v vs %v", k, a, b)
		}
		hits[a.Name]++
	}
	for _, e := range edges {
		if hits[e.Name] == 0 {
			t.Errorf("edge %s never chosen across 600 groups; rendezvous degenerate (%v)", e.Name, hits)
		}
	}
	// Removing the non-winning edge must not move a group (minimal
	// disruption property of highest-random-weight hashing).
	k := GroupKey("temps", "app", "SS(10ms)")
	win, _ := EdgeFor(k, edges)
	var rest []Node
	for _, e := range edges {
		if e != win {
			rest = append(rest, e)
		}
	}
	if again, _ := EdgeFor(k, append(rest, win)); again != win {
		t.Fatalf("winner changed when a loser was reordered: %v -> %v", win, again)
	}
	if strings.Contains(win.Name, "\x00") {
		t.Fatal("sanity: node names must not contain NUL")
	}
}
