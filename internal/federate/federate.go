// Package federate defines the two-role broker tier that carries the
// paper's group-aware dedup across the network (ROADMAP item 1): core
// nodes own sources — placement is consistent hashing of the source
// name over a virtual-node ring — and edge nodes hold subscriber
// sessions, opening at most one upstream subscription per
// (source-owning core, group) and fanning every local member of the
// group out from that single stream. The package holds the pure
// topology arithmetic shared by servers, clients and tests: roles,
// peer-list parsing, the placement ring, canonical group keys, the
// rebalance diff, and the rendezvous choice of which edge a group's
// relay fan-out should congregate on.
//
// The ring reuses the overlay simulator's key hashing
// (overlay.HashKey, fnv32a) — the same rendezvous primitive the
// in-process multicast trees are built on, promoted here to a real
// topology — so a key owner computed by a client matches the owner
// computed by every server handed the same peer list.
package federate

import (
	"fmt"
	"sort"
	"strings"

	"gasf/internal/overlay"
)

// Role is a broker's position in the federation.
type Role int

const (
	// RoleSingle is the default standalone broker: no federation, the
	// node owns every source and every subscriber.
	RoleSingle Role = iota
	// RoleCore owns sources: publishers connect here, the group-aware
	// engines run here, and edges subscribe here on behalf of their
	// local members.
	RoleCore
	// RoleEdge holds subscriber sessions and relays: each distinct
	// (source, group) opens one upstream subscription against the
	// source-owning core, fanned out locally to every member.
	RoleEdge
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleSingle:
		return "single"
	case RoleCore:
		return "core"
	case RoleEdge:
		return "edge"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// ParseRole reads a role name; the empty string is RoleSingle, so an
// unset -role flag keeps the standalone behavior.
func ParseRole(s string) (Role, error) {
	switch s {
	case "", "single":
		return RoleSingle, nil
	case "core":
		return RoleCore, nil
	case "edge":
		return RoleEdge, nil
	default:
		return 0, fmt.Errorf("federate: unknown role %q (want single, core or edge)", s)
	}
}

// Node is one named broker in the federation. The name is the stable
// placement identity (ring positions derive from it, never from the
// address), so a node can move hosts without reshuffling sources.
type Node struct {
	Name string
	Addr string
}

// String renders the node in peer-list notation.
func (n Node) String() string { return n.Name + "=" + n.Addr }

// ParsePeers reads a comma-separated peer list in "name=addr" notation,
// e.g. "core0=10.0.0.1:7070,core1=10.0.0.2:7070". Order does not
// matter: placement depends only on the set of names.
func ParsePeers(s string) ([]Node, error) {
	var out []Node
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		name, addr = strings.TrimSpace(name), strings.TrimSpace(addr)
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("federate: bad peer %q (want name=addr)", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("federate: duplicate peer name %q", name)
		}
		seen[name] = true
		out = append(out, Node{Name: name, Addr: addr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("federate: empty peer list")
	}
	return out, nil
}

// FormatPeers renders nodes back into the peer-list notation ParsePeers
// reads.
func FormatPeers(nodes []Node) string {
	parts := make([]string, len(nodes))
	for i, n := range nodes {
		parts[i] = n.String()
	}
	return strings.Join(parts, ",")
}

// VirtualPoints is how many ring positions each core occupies. Virtual
// nodes smooth the source distribution (a single fnv point per node
// makes arc lengths wildly uneven) and bound how much placement shifts
// when a core joins or leaves: only the sources on the arcs the new
// node's points claim move.
const VirtualPoints = 64

// ringPoint is one virtual position: the hash and the index of the
// core that owns it.
type ringPoint struct {
	id   overlay.NodeID
	node int
}

// Topology is an immutable placement ring over a set of core nodes.
// Build one with NewTopology; two topologies built from the same names
// place every source identically, wherever they are computed.
type Topology struct {
	nodes  []Node // sorted by name
	points []ringPoint
}

// NewTopology builds the placement ring. Names must be unique; order is
// irrelevant.
func NewTopology(cores []Node) (*Topology, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("federate: topology needs at least one core")
	}
	nodes := make([]Node, len(cores))
	copy(nodes, cores)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	for i := 1; i < len(nodes); i++ {
		if nodes[i].Name == nodes[i-1].Name {
			return nil, fmt.Errorf("federate: duplicate core name %q", nodes[i].Name)
		}
	}
	t := &Topology{nodes: nodes}
	for i, n := range nodes {
		for v := 0; v < VirtualPoints; v++ {
			t.points = append(t.points, ringPoint{
				id:   overlay.HashKey(fmt.Sprintf("%s#%d", n.Name, v)),
				node: i,
			})
		}
	}
	// Ties (identical hashes from different nodes) resolve by name
	// order, deterministically on every builder.
	sort.Slice(t.points, func(i, j int) bool {
		a, b := t.points[i], t.points[j]
		if a.id != b.id {
			return a.id < b.id
		}
		return a.node < b.node
	})
	return t, nil
}

// Nodes returns the cores in name order.
func (t *Topology) Nodes() []Node {
	cp := make([]Node, len(t.nodes))
	copy(cp, t.nodes)
	return cp
}

// Owner returns the core responsible for a source: the ring successor
// of the source name's hash, exactly the rendezvous rule the overlay
// simulator routes multicast groups by.
func (t *Topology) Owner(source string) Node {
	k := overlay.HashKey(source)
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].id >= k })
	if i == len(t.points) {
		i = 0
	}
	return t.nodes[t.points[i].node]
}

// Moved reports which of the given sources change owner from t to next
// — the rebalance diff a node join or leave triggers. Sources whose
// owner is unchanged keep their upstream legs untouched.
func Moved(t, next *Topology, sources []string) []string {
	var out []string
	for _, s := range sources {
		if t.Owner(s).Name != next.Owner(s).Name {
			out = append(out, s)
		}
	}
	return out
}

// GroupKey canonicalizes the identity an upstream leg is deduplicated
// by: the source plus the group — the application name and the
// lossless canonical rendering of its quality spec (quality.Spec's
// String). Two subscriptions with the same key share one core→edge
// leg; the spec string MUST be the canonical rendering, or equivalent
// groups would open duplicate legs.
func GroupKey(source, app, canonicalSpec string) string {
	return source + "\x00" + app + "\x00" + canonicalSpec
}

// EdgeFor picks the edge a group's subscribers should congregate on:
// highest-random-weight (rendezvous) hashing of the group key against
// each edge name. Clients that route every member of a group to the
// same edge collapse the group's relay fan-out to a single core→edge
// leg network-wide; the choice is stable under edge joins and leaves
// except for the groups whose winner changed.
func EdgeFor(groupKey string, edges []Node) (Node, error) {
	if len(edges) == 0 {
		return Node{}, fmt.Errorf("federate: no edges to place group on")
	}
	best, bestW := 0, overlay.NodeID(0)
	for i, e := range edges {
		w := overlay.HashKey(groupKey + "\x00" + e.Name)
		if i == 0 || w > bestW || (w == bestW && e.Name < edges[best].Name) {
			best, bestW = i, w
		}
	}
	return edges[best], nil
}
