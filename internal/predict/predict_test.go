package predict

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestLinearModelRecoversLine(t *testing.T) {
	m := NewLinearModel(10)
	for x := 1.0; x <= 8; x++ {
		m.Observe(x, 3*x+5)
	}
	slope, intercept := m.Fit()
	if math.Abs(slope-3) > 1e-9 || math.Abs(intercept-5) > 1e-9 {
		t.Errorf("Fit = (%g, %g), want (3, 5)", slope, intercept)
	}
	if got := m.Predict(20); math.Abs(got-65) > 1e-9 {
		t.Errorf("Predict(20) = %g, want 65", got)
	}
}

func TestLinearModelWindowEviction(t *testing.T) {
	m := NewLinearModel(3)
	// Old regime y = x; new regime y = 10x. After 3 new points the old
	// ones must be gone.
	for x := 1.0; x <= 5; x++ {
		m.Observe(x, x)
	}
	for x := 6.0; x <= 8; x++ {
		m.Observe(x, 10*x)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	slope, _ := m.Fit()
	if math.Abs(slope-10) > 1e-6 {
		t.Errorf("slope after eviction = %g, want 10", slope)
	}
}

func TestLinearModelDegenerateCases(t *testing.T) {
	var m LinearModel // zero value usable
	if s, i := m.Fit(); s != 0 || i != 0 {
		t.Errorf("empty Fit = (%g, %g), want (0, 0)", s, i)
	}
	m.Observe(4, 7)
	if s, i := m.Fit(); s != 0 || i != 7 {
		t.Errorf("single-point Fit = (%g, %g), want (0, 7)", s, i)
	}
	// Constant x: flat model through mean of y.
	m2 := NewLinearModel(5)
	m2.Observe(2, 10)
	m2.Observe(2, 20)
	if s, i := m2.Fit(); s != 0 || i != 15 {
		t.Errorf("constant-x Fit = (%g, %g), want (0, 15)", s, i)
	}
}

// Property: for points exactly on a line, prediction error is ~0 regardless
// of the line parameters.
func TestLinearModelExactFitProperty(t *testing.T) {
	f := func(slopeRaw, interRaw int16) bool {
		slope := float64(slopeRaw) / 16
		inter := float64(interRaw) / 16
		m := NewLinearModel(10)
		for x := 0.0; x < 6; x++ {
			m.Observe(x, slope*x+inter)
		}
		return math.Abs(m.Predict(10)-(slope*10+inter)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRunTimePredictorMarginAndClamp(t *testing.T) {
	p := NewRunTimePredictor(10, 2*time.Millisecond)
	// Decreasing trend that would predict negative at large x.
	p.Observe(1, 100*time.Microsecond)
	p.Observe(2, 50*time.Microsecond)
	p.Observe(3, 0)
	if got := p.Predict(3); got < 2*time.Millisecond {
		t.Errorf("Predict(3) = %v, want at least the margin", got)
	}
	pNeg := NewRunTimePredictor(10, 0)
	pNeg.Observe(1, 100*time.Microsecond)
	pNeg.Observe(2, 0)
	if got := pNeg.Predict(100); got != 0 {
		t.Errorf("Predict should clamp negatives to 0, got %v", got)
	}
	if n := p.Observations(); n != 3 {
		t.Errorf("Observations = %d, want 3", n)
	}
}

func TestRunTimePredictorLearnsLinearCost(t *testing.T) {
	p := NewRunTimePredictor(10, 0)
	// Greedy cost ~ 10us per tuple.
	for size := 2; size <= 10; size++ {
		p.Observe(size, time.Duration(size)*10*time.Microsecond)
	}
	got := p.Predict(20)
	want := 200 * time.Microsecond
	if got < want-time.Microsecond || got > want+time.Microsecond {
		t.Errorf("Predict(20) = %v, want ~%v", got, want)
	}
}

func TestLinearModelString(t *testing.T) {
	m := NewLinearModel(5)
	m.Observe(1, 2)
	m.Observe(2, 4)
	if s := m.String(); s == "" {
		t.Error("String() empty")
	}
}
