// Package predict implements the self-tuning run-time model used by timely
// cuts (§3.3): an online linear regression over the most recent regions'
// (size, greedy-run-time) observations. The paper found a linear model to
// be a reasonably accurate fit and recommends conservative overestimation;
// both are provided here.
package predict

import (
	"fmt"
	"time"
)

// DefaultWindow is the number of recent observations kept; the paper uses
// "the most recent, say ten, regions".
const DefaultWindow = 10

// LinearModel is an online least-squares fit y = slope*x + intercept over a
// sliding window of observations. The zero value is ready to use with the
// default window.
type LinearModel struct {
	window int
	xs     []float64
	ys     []float64
}

// NewLinearModel creates a model with the given sliding-window size;
// values < 2 use DefaultWindow.
func NewLinearModel(window int) *LinearModel {
	if window < 2 {
		window = DefaultWindow
	}
	return &LinearModel{window: window}
}

// Observe records one (x, y) observation, evicting the oldest when the
// window is full.
func (m *LinearModel) Observe(x, y float64) {
	if m.window == 0 {
		m.window = DefaultWindow
	}
	m.xs = append(m.xs, x)
	m.ys = append(m.ys, y)
	if len(m.xs) > m.window {
		m.xs = m.xs[1:]
		m.ys = m.ys[1:]
	}
}

// Len returns the number of retained observations.
func (m *LinearModel) Len() int { return len(m.xs) }

// Fit returns the current slope and intercept. With fewer than two
// observations, or a degenerate (constant-x) window, it falls back to a
// flat model through the mean of y.
func (m *LinearModel) Fit() (slope, intercept float64) {
	n := float64(len(m.xs))
	if n == 0 {
		return 0, 0
	}
	var sx, sy float64
	for i := range m.xs {
		sx += m.xs[i]
		sy += m.ys[i]
	}
	if len(m.xs) == 1 {
		return 0, sy
	}
	mx, my := sx/n, sy/n
	var sxx, sxy float64
	for i := range m.xs {
		dx := m.xs[i] - mx
		sxx += dx * dx
		sxy += dx * (m.ys[i] - my)
	}
	if sxx == 0 {
		return 0, my
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}

// Predict estimates y at x using the fitted model.
func (m *LinearModel) Predict(x float64) float64 {
	slope, intercept := m.Fit()
	return slope*x + intercept
}

// String implements fmt.Stringer for diagnostics.
func (m *LinearModel) String() string {
	s, i := m.Fit()
	return fmt.Sprintf("y = %.4g*x + %.4g (n=%d)", s, i, len(m.xs))
}

// RunTimePredictor predicts how long the greedy hitting-set algorithm will
// take on a region of a given size. It is the "self-tuning controller" of
// §3.5.3: run-time measurements compensate the model online.
type RunTimePredictor struct {
	model *LinearModel
	// Margin is a constant overestimation added to predictions, to be
	// "more conservative in meeting the timeliness requirements" (§3.3).
	Margin time.Duration
}

// NewRunTimePredictor creates a predictor over the given observation
// window with the given safety margin.
func NewRunTimePredictor(window int, margin time.Duration) *RunTimePredictor {
	return &RunTimePredictor{model: NewLinearModel(window), Margin: margin}
}

// Observe records the measured greedy run time for a region of the given
// size (in tuples).
func (p *RunTimePredictor) Observe(regionSize int, elapsed time.Duration) {
	p.model.Observe(float64(regionSize), float64(elapsed))
}

// Predict estimates the greedy run time for a region of the given size,
// including the safety margin. Predictions never go negative.
func (p *RunTimePredictor) Predict(regionSize int) time.Duration {
	est := time.Duration(p.model.Predict(float64(regionSize))) + p.Margin
	if est < 0 {
		return 0
	}
	return est
}

// Observations returns how many measurements back the current model.
func (p *RunTimePredictor) Observations() int { return p.model.Len() }
