package gasf

import (
	"context"
	"testing"
	"time"
)

// White-box tests for the functional options and their plumbing into the
// embedded broker.

func TestOptionResolution(t *testing.T) {
	cfg, err := resolveBrokerConfig(false, []Option{
		WithShards(3),
		WithQueueDepth(64),
		WithFlushBatch(8),
		WithAlgorithm(PS),
		WithStrategy(Batched),
		WithBatchSize(10),
		WithCuts(50 * time.Millisecond),
		WithSlowPolicy(PolicyDrop),
		WithSubscriberQueue(33),
		WithMaxSubscriberQueue(999),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.engine.ShardCount != 3 || cfg.engine.QueueDepth != 64 || cfg.engine.FlushBatch != 8 {
		t.Errorf("runtime knobs wrong: %+v", cfg.engine)
	}
	if cfg.engine.Algorithm != PS || cfg.engine.Strategy != Batched || cfg.engine.BatchSize != 10 {
		t.Errorf("engine knobs wrong: %+v", cfg.engine)
	}
	if !cfg.engine.Cuts || cfg.engine.MaxDelay != 50*time.Millisecond {
		t.Errorf("cuts knobs wrong: %+v", cfg.engine)
	}
	if cfg.policy != PolicyDrop || cfg.subQueue != 33 || cfg.maxSubQueue != 999 {
		t.Errorf("delivery knobs wrong: %+v", cfg)
	}
}

func TestOptionScopeEnforcement(t *testing.T) {
	// Engine options are rejected by Dial...
	if _, err := Dial("localhost:0", WithShards(2)); err == nil {
		t.Error("Dial(WithShards) should fail")
	}
	if _, err := Dial("localhost:0", WithQueueDepth(4)); err == nil {
		t.Error("Dial(WithQueueDepth) should fail at broker scope")
	}
	if _, err := Dial("localhost:0", WithSlowPolicy(PolicyDrop)); err == nil {
		t.Error("Dial(WithSlowPolicy) should fail")
	}
	// ...and dial options by NewEmbedded.
	if _, err := NewEmbedded(WithDialTimeout(time.Second)); err == nil {
		t.Error("NewEmbedded(WithDialTimeout) should fail")
	}
	// Invalid values fail regardless of scope.
	if _, err := NewEmbedded(WithQueueDepth(-1)); err == nil {
		t.Error("negative queue depth should fail")
	}
	if _, err := NewEmbedded(WithCuts(0)); err == nil {
		t.Error("zero cut constraint should fail")
	}
	if _, err := NewEmbedded(WithBatchSize(0)); err == nil {
		t.Error("zero batch size should fail")
	}
	// Flow-gap expiry options: embedded-only, and the interval needs
	// the timeout.
	if _, err := Dial("localhost:0", WithSourceTimeout(time.Second)); err == nil {
		t.Error("Dial(WithSourceTimeout) should fail")
	}
	if _, err := NewEmbedded(WithSourceTimeout(0)); err == nil {
		t.Error("zero source timeout should fail")
	}
	if _, err := NewEmbedded(WithScanInterval(time.Millisecond)); err == nil {
		t.Error("WithScanInterval without WithSourceTimeout should fail")
	}
	if cfg, err := resolveBrokerConfig(false, []Option{
		WithSourceTimeout(time.Second), WithScanInterval(50 * time.Millisecond),
	}); err != nil || cfg.srcTimeout != time.Second || cfg.scanEvery != 50*time.Millisecond {
		t.Errorf("flow-gap options did not resolve: %+v err=%v", cfg, err)
	}
}

// TestWithEngineOptionsBridge checks the migration escape hatch: a full
// Options value flows through, and later options override fields.
func TestWithEngineOptionsBridge(t *testing.T) {
	base := Options{Algorithm: PS, ShardCount: 7, EmitPunctuations: true}
	cfg, err := resolveBrokerConfig(false, []Option{WithEngineOptions(base), WithShards(2)})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.engine.Algorithm != PS || !cfg.engine.EmitPunctuations {
		t.Errorf("engine options lost in bridge: %+v", cfg.engine)
	}
	if cfg.engine.ShardCount != 2 {
		t.Errorf("later option should override: ShardCount = %d", cfg.engine.ShardCount)
	}
}

// TestSubscriptionQueueDepthPropagates is the facade half of the
// SubscribeBuffered satellite: WithQueueDepth on Subscribe reaches the
// embedded broker's delivery queue (explicit, defaulted, clamped).
func TestSubscriptionQueueDepthPropagates(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	b, err := NewEmbedded(WithSubscriberQueue(9), WithMaxSubscriberQueue(50))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close(ctx)
	schema, err := NewSchema("v")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.OpenSource(ctx, "src", schema); err != nil {
		t.Fatal(err)
	}
	sub, err := b.Subscribe(ctx, "explicit", "src", "DC1(v, 0.5, 0)", WithQueueDepth(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.(*embeddedSub).queueDepth(); got != 5 {
		t.Errorf("explicit depth = %d, want 5", got)
	}
	sub, err = b.Subscribe(ctx, "defaulted", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.(*embeddedSub).queueDepth(); got != 9 {
		t.Errorf("defaulted depth = %d, want 9", got)
	}
	sub, err = b.Subscribe(ctx, "clamped", "src", "DC1(v, 0.5, 0)", WithQueueDepth(5000))
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.(*embeddedSub).queueDepth(); got != 50 {
		t.Errorf("clamped depth = %d, want 50", got)
	}
	if _, err := b.Subscribe(ctx, "bad", "src", "DC1(v, 0.5, 0)", WithQueueDepth(-3)); err == nil {
		t.Error("negative subscription queue depth should fail")
	}
	// The subscription reports the spec it joined with, canonically.
	if sp := sub.Spec(); sp.String() != "DC1(v, 0.5, 0)" {
		t.Errorf("Spec() = %q", sp.String())
	}
}
