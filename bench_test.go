// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's experiment index), plus micro-benchmarks of
// the engine primitives. Each Benchmark<ID> re-runs the corresponding
// experiment workload; the experiment's printed rows are produced by
// cmd/gasf-experiments, while these benchmarks measure end-to-end cost and
// allocation behavior of regenerating them.
//
// Run with:
//
//	go test -bench=. -benchmem
package gasf_test

import (
	"testing"
	"time"

	"gasf"
	"gasf/internal/core"
	"gasf/internal/experiments"
	"gasf/internal/filter"
	"gasf/internal/hitting"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// benchCfg is the quick experiment configuration used by the per-figure
// benchmarks (2000 tuples, 3 runs) so the whole suite completes in
// minutes.
func benchCfg() experiments.Config {
	return experiments.Config{Quick: true, Seed: 1}
}

// benchExperiment runs one registered experiment b.N times.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- introduction figure --------------------------------------------------

func BenchmarkFig13Bandwidth(b *testing.B) { benchExperiment(b, "F1.3") }

// --- one benchmark per table/figure (Chapter 4) -------------------------

func BenchmarkTable41Specs(b *testing.B)                { benchExperiment(b, "T4.1") }
func BenchmarkFig42OIRatios(b *testing.B)               { benchExperiment(b, "F4.2") }
func BenchmarkFig43to45CPUCost(b *testing.B)            { benchExperiment(b, "F4.3-4.5") }
func BenchmarkFig46to48Latency(b *testing.B)            { benchExperiment(b, "F4.6-4.8") }
func BenchmarkFig49CutLatency(b *testing.B)             { benchExperiment(b, "F4.9") }
func BenchmarkFig410CutCPU(b *testing.B)                { benchExperiment(b, "F4.10") }
func BenchmarkFig411PercentCut(b *testing.B)            { benchExperiment(b, "F4.11") }
func BenchmarkFig412CutOI(b *testing.B)                 { benchExperiment(b, "F4.12") }
func BenchmarkFig413OutputStrategyLatency(b *testing.B) { benchExperiment(b, "F4.13") }
func BenchmarkFig414OutputStrategyCPU(b *testing.B)     { benchExperiment(b, "F4.14") }
func BenchmarkFig415SlackSweep(b *testing.B)            { benchExperiment(b, "F4.15") }
func BenchmarkFig416DeltaSweep(b *testing.B)            { benchExperiment(b, "F4.16") }
func BenchmarkFig417GroupSize(b *testing.B)             { benchExperiment(b, "F4.17") }
func BenchmarkFig418GroupSizeCPU(b *testing.B)          { benchExperiment(b, "F4.18") }
func BenchmarkFig419SourceSpecs(b *testing.B)           { benchExperiment(b, "F4.19") }
func BenchmarkFig420SourceOI(b *testing.B)              { benchExperiment(b, "F4.20") }
func BenchmarkFig421to423Traces(b *testing.B)           { benchExperiment(b, "F4.21-4.23") }
func BenchmarkFig424SourceCPU(b *testing.B)             { benchExperiment(b, "F4.24") }

// --- one benchmark per table/figure (Chapter 5) -------------------------

func BenchmarkTable52Groups(b *testing.B)      { benchExperiment(b, "T5.2") }
func BenchmarkFig52OutputRatio(b *testing.B)   { benchExperiment(b, "F5.2") }
func BenchmarkTable53CPUBatch(b *testing.B)    { benchExperiment(b, "T5.3") }
func BenchmarkFig53OverheadRatio(b *testing.B) { benchExperiment(b, "F5.3") }

// --- ablation benches ----------------------------------------------------

func BenchmarkAblationTieBreak(b *testing.B)      { benchExperiment(b, "A1") }
func BenchmarkAblationSegmentation(b *testing.B)  { benchExperiment(b, "A2") }
func BenchmarkAblationGreedyVsExact(b *testing.B) { benchExperiment(b, "A3") }

// --- engine micro-benchmarks ---------------------------------------------

// benchSeries builds the shared NAMOS workload once.
func benchSeries(b *testing.B, n int) *gasf.Series {
	b.Helper()
	sr, err := gasf.NAMOS(gasf.TraceConfig{N: n, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return sr
}

func benchFilters(b *testing.B, sr *gasf.Series, count int) []gasf.Filter {
	b.Helper()
	stat, err := sr.MeanAbsChange("tmpr4")
	if err != nil {
		b.Fatal(err)
	}
	out := make([]gasf.Filter, count)
	for i := range out {
		mult := 1 + float64(i)*0.37
		f, err := gasf.NewDCFilter(string(rune('A'+i)), "tmpr4", mult*stat, 0.5*mult*stat)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = f
	}
	return out
}

// BenchmarkEngineRG measures region-based greedy throughput per input
// tuple on a three-filter group.
func BenchmarkEngineRG(b *testing.B) {
	sr := benchSeries(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gasf.Run(benchFilters(b, sr, 3), sr, gasf.Options{Algorithm: gasf.RG}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*sr.Len())/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkEnginePS measures per-candidate-set greedy throughput.
func BenchmarkEnginePS(b *testing.B) {
	sr := benchSeries(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gasf.Run(benchFilters(b, sr, 3), sr, gasf.Options{Algorithm: gasf.PS}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*sr.Len())/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkEngineRGWideGroup measures scaling to a 20-filter group
// (Fig 4.18's regime).
func BenchmarkEngineRGWideGroup(b *testing.B) {
	sr := benchSeries(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gasf.Run(benchFilters(b, sr, 20), sr, gasf.Options{Algorithm: gasf.RG}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelfInterested is the baseline cost for the overhead-ratio
// comparisons.
func BenchmarkSelfInterested(b *testing.B) {
	sr := benchSeries(b, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gasf.RunSelfInterested(benchFilters(b, sr, 3), sr, gasf.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDCProcess measures the raw per-tuple cost of one
// delta-compression filter.
func BenchmarkDCProcess(b *testing.B) {
	sr := benchSeries(b, 2000)
	f, err := filter.NewDC1("f", "tmpr4", 0.01, 0.005)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := sr.At(i % sr.Len())
		if _, err := f.Process(t); err != nil {
			b.Fatal(err)
		}
		if i%sr.Len() == sr.Len()-1 {
			f.Reset()
		}
	}
}

// BenchmarkGreedyHittingSet measures the stage-two decision cost on
// synthetic regions of growing size.
func BenchmarkGreedyHittingSet(b *testing.B) {
	schema := tuple.MustSchema("v")
	mkRegion := func(nSets, width int) []*filter.CandidateSet {
		sets := make([]*filter.CandidateSet, nSets)
		for i := range sets {
			members := make([]*tuple.Tuple, width)
			for j := range members {
				seq := i*2 + j
				members[j] = tuple.MustNew(schema, seq,
					trace.Epoch.Add(time.Duration(seq)*time.Millisecond), []float64{0})
			}
			sets[i] = &filter.CandidateSet{Owner: string(rune('A' + i)), Members: members, PickDegree: 1}
		}
		return sets
	}
	region := mkRegion(8, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hitting.Greedy(region); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMulticastDissemination measures the Solar dissemination path:
// engine transmissions pushed through a 7-node multicast tree.
func BenchmarkMulticastDissemination(b *testing.B) {
	sr := benchSeries(b, 1000)
	res, err := gasf.Run(benchFilters(b, sr, 3), sr, gasf.Options{Algorithm: gasf.RG})
	if err != nil {
		b.Fatal(err)
	}
	net, err := overlayNetwork()
	if err != nil {
		b.Fatal(err)
	}
	tree, acct, err := buildTree(net)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := res.Transmissions[i%len(res.Transmissions)]
		if _, err := tree.Multicast(tr.Destinations, 72, acct); err != nil {
			b.Fatal(err)
		}
	}
}

// --- SI comparison for core.Options defaults ------------------------------

// BenchmarkEngineStepLatencyBudget verifies the per-tuple step stays well
// under the paper's 10 ms arrival interval even with cuts enabled.
func BenchmarkEngineStepLatencyBudget(b *testing.B) {
	sr := benchSeries(b, 2000)
	filters := benchFilters(b, sr, 3)
	e, err := core.NewEngine(filters, core.Options{Algorithm: core.RG, Cuts: true, MaxDelay: 60 * time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%sr.Len() == 0 {
			b.StopTimer()
			e, err = core.NewEngine(benchFilters(b, sr, 3), core.Options{Algorithm: core.RG, Cuts: true, MaxDelay: 60 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := e.Step(sr.At(i % sr.Len())); err != nil {
			b.Fatal(err)
		}
	}
}
