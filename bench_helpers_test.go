package gasf_test

import (
	"gasf/internal/multicast"
	"gasf/internal/overlay"
)

// overlayNetwork builds the 7-node benchmark overlay, mirroring the
// paper's Emulab deployments.
func overlayNetwork() (*overlay.Network, error) {
	return overlay.New(overlay.Config{Nodes: 7, Seed: 1})
}

// buildTree builds a 3-subscriber multicast tree rooted at the first node.
func buildTree(net *overlay.Network) (*multicast.Tree, *multicast.Accounting, error) {
	members := map[string]overlay.NodeID{
		"A": net.NodeByIndex(1),
		"B": net.NodeByIndex(2),
		"C": net.NodeByIndex(3),
	}
	tree, err := multicast.BuildTree(net, net.NodeByIndex(0), members)
	if err != nil {
		return nil, nil, err
	}
	return tree, multicast.NewAccounting(), nil
}
