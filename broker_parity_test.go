package gasf_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gasf"
	"gasf/internal/quality"
	"gasf/internal/trace"
	"gasf/internal/wire"
)

// The embedded/networked parity suite: the same publish/subscribe/churn
// script driven through both Broker implementations must yield
// byte-identical wire-encoded released sequences per subscriber —
// including mid-stream joins and departures. Determinism across
// transports rests on two ordering guarantees the API provides:
// Source.Sync orders prior publishes ahead of later membership changes,
// and Subscribe/Subscription.Close return only after the join/departure
// has been applied at a tuple boundary.

// parityEvent is one membership change at a script position.
type parityEvent struct {
	join    bool
	app     string
	spec    string
	queue   int
	consume bool // consuming sessions assert their full stream; silent ones just leave
}

// parityScript is one deterministic publish/churn program over a trace.
type parityScript struct {
	opts   gasf.Options
	source string
	sr     *gasf.Series
	// initial membership, then per-phase publishes and events.
	initial []parityEvent
	phases  []parityPhase
}

type parityPhase struct {
	count  int // tuples published before the events
	events []parityEvent
}

// driveParity runs the script on one broker and returns the
// wire-encoded delivery sequence per consuming app.
func driveParity(t *testing.T, b gasf.Broker, sc parityScript) map[string][]byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	src, err := b.OpenSource(ctx, sc.source, sc.sr.Schema())
	if err != nil {
		t.Fatalf("open source: %v", err)
	}
	subs := make(map[string]gasf.Subscription)
	fps := make(map[string][]byte)
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	consume := func(app string, sub gasf.Subscription) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				d, err := sub.Recv(ctx)
				if errors.Is(err, gasf.ErrStreamEnded) {
					break
				}
				if err != nil {
					t.Errorf("%s: recv: %v", app, err)
					break
				}
				mu.Lock()
				buf, err := wire.AppendTransmission(fps[app], d.Tuple, d.Destinations)
				if err != nil {
					t.Errorf("%s: encode: %v", app, err)
				}
				fps[app] = buf
				mu.Unlock()
			}
			_ = sub.Close(ctx)
		}()
	}
	apply := func(ev parityEvent) {
		if ev.join {
			var opts []gasf.SubOption
			if ev.queue > 0 {
				opts = append(opts, gasf.WithQueueDepth(ev.queue))
			}
			sub, err := b.Subscribe(ctx, ev.app, sc.source, ev.spec, opts...)
			if err != nil {
				t.Fatalf("subscribe %s: %v", ev.app, err)
			}
			subs[ev.app] = sub
			mu.Lock()
			fps[ev.app] = nil
			mu.Unlock()
			if ev.consume {
				consume(ev.app, sub)
			}
		} else {
			sub := subs[ev.app]
			if sub == nil {
				t.Fatalf("script leaves unknown app %s", ev.app)
			}
			if err := sub.Close(ctx); err != nil {
				t.Fatalf("leave %s: %v", ev.app, err)
			}
			delete(subs, ev.app)
			mu.Lock()
			delete(fps, ev.app) // silent leavers do not assert a stream
			mu.Unlock()
		}
	}
	for _, ev := range sc.initial {
		apply(ev)
	}
	next := 0
	publish := func(n int) {
		if n == 0 {
			return
		}
		batch := make([]*gasf.Tuple, 0, n)
		for i := 0; i < n && next < sc.sr.Len(); i++ {
			batch = append(batch, sc.sr.At(next))
			next++
		}
		if err := src.PublishBatch(ctx, batch); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}
	for _, ph := range sc.phases {
		publish(ph.count)
		for _, ev := range ph.events {
			// The barrier makes the membership change's tuple boundary
			// deterministic: everything published above is ordered first.
			if err := src.Sync(ctx); err != nil {
				t.Fatalf("sync: %v", err)
			}
			apply(ev)
		}
	}
	publish(sc.sr.Len() - next)
	if err := src.Finish(ctx); err != nil {
		t.Fatalf("finish: %v", err)
	}
	wg.Wait()
	return fps
}

// randomParityScript draws a script: a trace, engine options, initial
// members, and mid-stream joins/leaves at random positions.
func randomParityScript(t *testing.T, rng *rand.Rand, idx int) parityScript {
	t.Helper()
	n := 80 + rng.Intn(160)
	cfg := trace.Config{N: n, Seed: rng.Int63n(1 << 30)}
	var (
		sr  *gasf.Series
		err error
	)
	switch rng.Intn(3) {
	case 0:
		sr, err = trace.NAMOS(cfg)
	case 1:
		sr, err = trace.Cow(cfg)
	default:
		sr, err = trace.FireHRR(cfg)
	}
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	attrs := sr.Schema().Names()
	specFor := func() string {
		attr := attrs[rng.Intn(len(attrs))]
		stat, err := sr.MeanAbsChange(attr)
		if err != nil {
			t.Fatal(err)
		}
		if stat == 0 {
			stat = 1e-6
		}
		delta := stat * (0.5 + 2.5*rng.Float64())
		slack := delta * (0.1 + 0.38*rng.Float64())
		kind := quality.DC1
		if rng.Intn(4) == 0 {
			kind = quality.SDC
		}
		return quality.Spec{Kind: kind, Attrs: []string{attr}, Delta: delta, Slack: slack}.String()
	}
	opts := gasf.Options{ShardCount: 1 + rng.Intn(4), QueueDepth: 8 + rng.Intn(64), FlushBatch: 1 + rng.Intn(8)}
	if rng.Intn(2) == 1 {
		opts.Algorithm = gasf.PS
	}
	switch rng.Intn(4) {
	case 0:
		opts.Strategy = gasf.PerCandidateSet
	case 1:
		opts.Strategy = gasf.Batched
		opts.BatchSize = 2 + rng.Intn(30)
	}
	if rng.Intn(4) == 0 {
		opts.Cuts = true
		opts.MaxDelay = time.Duration(30+rng.Intn(120)) * time.Millisecond
	}

	sc := parityScript{opts: opts, source: fmt.Sprintf("src%d", idx), sr: sr}
	stable := 1 + rng.Intn(3)
	for i := 0; i < stable; i++ {
		sc.initial = append(sc.initial, parityEvent{join: true, app: fmt.Sprintf("stable%d", i), spec: specFor(), consume: true})
	}
	// A silent member that departs mid-stream: it never consumes (its
	// stream is not asserted), but its join and acked leave reshape the
	// group for everyone else, which the stable fingerprints do assert.
	leaver := parityEvent{join: true, app: "leaver", spec: specFor(), queue: 4096}
	positions := []int{10 + rng.Intn(n/3), 10 + rng.Intn(n/3)}
	sc.initial = append(sc.initial, leaver)
	sc.phases = []parityPhase{
		{count: positions[0], events: []parityEvent{{join: true, app: "joiner", spec: specFor(), consume: true, queue: 128}}},
		{count: positions[1], events: []parityEvent{{app: "leaver"}}},
	}
	return sc
}

// TestBrokerParityEmbeddedNetworked is the acceptance test of the
// unified API: randomized publish/subscribe/churn scripts produce
// byte-identical per-subscriber wire sequences on the embedded and the
// networked broker.
func TestBrokerParityEmbeddedNetworked(t *testing.T) {
	rng := rand.New(rand.NewSource(20260731))
	cases := 6
	if testing.Short() {
		cases = 2
	}
	for c := 0; c < cases; c++ {
		sc := randomParityScript(t, rng, c)
		t.Run(fmt.Sprintf("case%d", c), func(t *testing.T) {
			emb, err := gasf.NewEmbedded(gasf.WithEngineOptions(sc.opts))
			if err != nil {
				t.Fatal(err)
			}
			embFPs := driveParity(t, emb, sc)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := emb.Close(ctx); err != nil {
				t.Fatalf("embedded close: %v", err)
			}

			srv, err := gasf.StartServer(gasf.ServerConfig{Engine: sc.opts})
			if err != nil {
				t.Fatal(err)
			}
			rb, err := gasf.Dial(srv.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			netFPs := driveParity(t, rb, sc)
			if err := rb.Close(ctx); err != nil {
				t.Fatalf("remote close: %v", err)
			}
			if err := srv.Shutdown(ctx); err != nil {
				t.Fatalf("server shutdown: %v", err)
			}

			if len(embFPs) != len(netFPs) {
				t.Fatalf("app sets differ: embedded %d, networked %d", len(embFPs), len(netFPs))
			}
			for app, embFP := range embFPs {
				netFP, ok := netFPs[app]
				if !ok {
					t.Errorf("app %s missing from networked run", app)
					continue
				}
				if !bytes.Equal(embFP, netFP) {
					t.Errorf("case %d (alg=%v strat=%v cuts=%v shards=%d): app %s released sequences differ (embedded %d bytes, networked %d bytes)",
						c, sc.opts.Algorithm, sc.opts.Strategy, sc.opts.Cuts, sc.opts.ShardCount, app, len(embFP), len(netFP))
				}
				if len(embFP) == 0 {
					t.Logf("case %d app %s: empty stream (filters passed nothing) — weak case", c, app)
				}
			}
		})
	}
}

// TestBrokerParitySubscribeBufferedCompat pins the deprecated
// Client.SubscribeBuffered against the new WithQueueDepth path: both
// relay the same queue depth to the server.
func TestBrokerParitySubscribeBufferedCompat(t *testing.T) {
	srv, err := gasf.StartServer(gasf.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := srv.Addr().String()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	schema, err := gasf.NewSchema("v")
	if err != nil {
		t.Fatal(err)
	}
	b, err := gasf.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	src, err := b.OpenSource(ctx, "src", schema)
	if err != nil {
		t.Fatal(err)
	}
	newSub, err := b.Subscribe(ctx, "new", "src", "DC1(v, 0.5, 0)", gasf.WithQueueDepth(17))
	if err != nil {
		t.Fatal(err)
	}
	oldSub, err := gasf.NewClient(addr).SubscribeBuffered("old", "src", "DC1(v, 0.5, 0)", 17)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := gasf.NewTuple(schema, 0, time.Unix(1, 0), []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Publish(ctx, tp); err != nil {
		t.Fatal(err)
	}
	if err := src.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	d, err := newSub.Recv(ctx)
	if err != nil {
		t.Fatalf("new-path recv: %v", err)
	}
	od, err := oldSub.Recv()
	if err != nil {
		t.Fatalf("old-path recv: %v", err)
	}
	if d.Tuple.Seq != od.Tuple.Seq || d.Tuple.ValueAt(0) != od.Tuple.ValueAt(0) {
		t.Errorf("paths delivered different tuples: %v vs %v", d.Tuple, od.Tuple)
	}
	if err := b.Close(ctx); err != nil {
		t.Fatal(err)
	}
	oldSub.Close()
}

// driveResume runs the deterministic resume script on one durable
// broker: app "keeper" consumes the whole stream; app "res" consumes
// phase 1 while recording its wire-encoded deliveries, leaves at a Sync
// fence, misses phase 2, then resumes from offset 0 and records the
// replayed history and the spliced phase-3 live stream. It returns the
// keeper's full fingerprint, res's pre-leave fingerprint, res's
// post-resume fingerprint and the post-resume offsets.
func driveResume(t *testing.T, b gasf.Broker, n1, n2, n3 int) (keeperFP, beforeFP, afterFP []byte, offsets []uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	total := recoverySeries(t, n1+n2+n3, 0)
	src, err := b.OpenSource(ctx, "src", total.Schema())
	if err != nil {
		t.Fatal(err)
	}
	publish := func(from, to int) {
		t.Helper()
		batch := make([]*gasf.Tuple, 0, to-from)
		for i := from; i < to; i++ {
			batch = append(batch, total.At(i))
		}
		if err := src.PublishBatch(ctx, batch); err != nil {
			t.Fatal(err)
		}
		if err := src.Sync(ctx); err != nil {
			t.Fatal(err)
		}
	}
	record := func(buf []byte, d *gasf.Delivery) []byte {
		t.Helper()
		out, err := wire.AppendTransmission(buf, d.Tuple, d.Destinations)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	keeper, err := b.Subscribe(ctx, "keeper", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	keeperDone := make(chan []byte, 1)
	go func() {
		var fp []byte
		for {
			d, err := keeper.Recv(ctx)
			if errors.Is(err, gasf.ErrStreamEnded) {
				keeperDone <- fp
				return
			}
			if err != nil {
				t.Errorf("keeper: %v", err)
				keeperDone <- fp
				return
			}
			fp = record(fp, d)
		}
	}()

	res, err := b.Subscribe(ctx, "res", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: n1-1 sets release (the last is held back); res consumes
	// and records every one, then leaves at a fenced boundary.
	publish(0, n1)
	for i := 0; i < n1-1; i++ {
		d, err := res.Recv(ctx)
		if err != nil {
			t.Fatalf("res delivery %d: %v", i, err)
		}
		beforeFP = record(beforeFP, d)
	}
	if err := res.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Phase 2: released to the keeper alone.
	publish(n1, n1+n2)

	// Resume from the beginning; phase 3 then runs live.
	res2, err := b.Subscribe(ctx, "res", "src", "DC1(v, 0.5, 0)", gasf.WithResumeFrom(0))
	if err != nil {
		t.Fatalf("resume subscribe: %v", err)
	}
	publish(n1+n2, n1+n2+n3)
	if err := src.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	for {
		d, err := res2.Recv(ctx)
		if errors.Is(err, gasf.ErrStreamEnded) {
			break
		}
		if err != nil {
			t.Fatalf("res after resume, delivery %d: %v", len(offsets), err)
		}
		afterFP = record(afterFP, d)
		offsets = append(offsets, d.Offset)
	}
	keeperFP = <-keeperDone
	return keeperFP, beforeFP, afterFP, offsets
}

// TestBrokerParityResume is the resume acceptance test on both
// transports: the replayed history a resumed subscriber receives must be
// byte-identical to the live stream it consumed before leaving, the
// spliced live offsets must sit strictly beyond the replayed ones with
// no gap in the records addressed to the app, and the embedded and
// networked transports must produce identical fingerprints throughout.
func TestBrokerParityResume(t *testing.T) {
	const n1, n2, n3 = 60, 40, 60
	opts := gasf.Options{ShardCount: 2, QueueDepth: 32, FlushBatch: 4}

	type run struct {
		keeper, before, after []byte
		offsets               []uint64
	}
	check := func(t *testing.T, r run) {
		t.Helper()
		// The replayed prefix is exactly the stream res consumed live
		// before leaving: byte-identical, same length.
		if len(r.after) < len(r.before) || !bytes.Equal(r.after[:len(r.before)], r.before) {
			t.Fatalf("replayed stream diverges from the live stream consumed before leaving (replayed+live %d bytes, live prefix %d bytes)", len(r.after), len(r.before))
		}
		// Replay carries offsets 0..n1-2; the live leg follows the phase-2
		// records (keeper-only, skipped by replay) with no gap in res's
		// records and strictly increasing offsets.
		want := (n1 - 1) + n3
		if len(r.offsets) != want {
			t.Fatalf("res received %d deliveries after resume, want %d", len(r.offsets), want)
		}
		for i, off := range r.offsets {
			wantOff := uint64(i)
			if i >= n1-1 {
				wantOff = uint64(n1 + n2 + (i - (n1 - 1)))
			}
			if off != wantOff {
				t.Fatalf("post-resume delivery %d: offset %d, want %d", i, off, wantOff)
			}
		}
	}

	var runs []run
	t.Run("embedded", func(t *testing.T) {
		emb, err := gasf.NewEmbedded(gasf.WithEngineOptions(opts), gasf.WithDurability(t.TempDir()))
		if err != nil {
			t.Fatal(err)
		}
		k, b2, a, off := driveResume(t, emb, n1, n2, n3)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := emb.Close(ctx); err != nil {
			t.Fatal(err)
		}
		r := run{k, b2, a, off}
		check(t, r)
		runs = append(runs, r)
	})
	t.Run("networked", func(t *testing.T) {
		srv, err := gasf.StartServer(gasf.ServerConfig{Engine: opts, DataDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := gasf.Dial(srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		k, b2, a, off := driveResume(t, rb, n1, n2, n3)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := rb.Close(ctx); err != nil {
			t.Fatal(err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		r := run{k, b2, a, off}
		check(t, r)
		runs = append(runs, r)
	})
	if len(runs) != 2 {
		t.Fatal("one transport did not run")
	}
	if !bytes.Equal(runs[0].keeper, runs[1].keeper) {
		t.Errorf("keeper fingerprints differ across transports (embedded %d bytes, networked %d bytes)", len(runs[0].keeper), len(runs[1].keeper))
	}
	if !bytes.Equal(runs[0].after, runs[1].after) {
		t.Errorf("resumed fingerprints differ across transports (embedded %d bytes, networked %d bytes)", len(runs[0].after), len(runs[1].after))
	}
}
