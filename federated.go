package gasf

import (
	"context"
	"errors"
	"sync"

	"gasf/internal/federate"
	"gasf/internal/server"
)

// Federated is the Broker over a multi-broker core/edge topology
// (DESIGN.md §15): publishers are routed to the core that owns their
// source (consistent-hash placement over the source name), and
// subscribers are routed to an edge chosen by rendezvous hashing of
// their group key — so every member of a group lands on the same edge
// and the group's filtered stream crosses the core→edge link exactly
// once, however many subscribers share it.
//
// The handle is a thin router over per-node Remote handles, so every
// Dial option (WithReconnect, WithDialTimeout, ...) applies to the
// underlying sessions unchanged.
type Federated struct {
	topo  *federate.Topology
	edges []federate.Node
	opts  []Option

	mu      sync.Mutex
	remotes map[string]*Remote
	closed  bool
}

var _ Broker = (*Federated)(nil)

// FederationConfig places a server in a federated deployment via
// ServerConfig.Federation; the zero value runs a standalone node.
type FederationConfig = server.FederationConfig

// FederationRole is a server's role in a federated deployment.
type FederationRole = federate.Role

// Federation roles for FederationConfig.Role.
const (
	// RoleSingle is a standalone server (the default).
	RoleSingle = federate.RoleSingle
	// RoleCore owns sources placed on it by the core ring and serves
	// relay legs to edges.
	RoleCore = federate.RoleCore
	// RoleEdge holds subscriber sessions and deduplicates groups over
	// one upstream leg per (core, group).
	RoleEdge = federate.RoleEdge
)

// FederationNode is one named peer in a federation peer list.
type FederationNode = federate.Node

// ParsePeers reads a federation peer list in "name=addr,name=addr"
// notation, as taken by gasf-server -peers and DialFederated.
func ParsePeers(s string) ([]FederationNode, error) { return federate.ParsePeers(s) }

// ParseRole reads a federation role name ("single", "core" or "edge").
func ParseRole(s string) (FederationRole, error) { return federate.ParseRole(s) }

// FormatPeers renders a peer list back into the "name=addr,name=addr"
// notation ParsePeers reads.
func FormatPeers(nodes []FederationNode) string { return federate.FormatPeers(nodes) }

// DialFederated returns a Broker over a federated deployment. cores
// and edges are peer lists in "name=addr,name=addr" notation — the
// same notation gasf-server takes via -peers — and the core list must
// match the servers' own, so client-side placement agrees with the
// tier's. Options are validated once and applied to every per-node
// session.
func DialFederated(cores, edges string, opts ...Option) (*Federated, error) {
	coreNodes, err := federate.ParsePeers(cores)
	if err != nil {
		return nil, err
	}
	edgeNodes, err := federate.ParsePeers(edges)
	if err != nil {
		return nil, err
	}
	topo, err := federate.NewTopology(coreNodes)
	if err != nil {
		return nil, err
	}
	if _, err := resolveBrokerConfig(true, opts); err != nil {
		return nil, err
	}
	return &Federated{
		topo:    topo,
		edges:   edgeNodes,
		opts:    opts,
		remotes: make(map[string]*Remote),
	}, nil
}

// remote returns (dialing lazily) the cached handle for one node.
func (f *Federated) remote(addr string) (*Remote, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, errBrokerClosed
	}
	if r := f.remotes[addr]; r != nil {
		return r, nil
	}
	r, err := Dial(addr, f.opts...)
	if err != nil {
		return nil, err
	}
	f.remotes[addr] = r
	return r, nil
}

// OpenSource implements Broker: the publisher session lands on the
// core the placement ring assigns the source to.
func (f *Federated) OpenSource(ctx context.Context, name string, schema *Schema) (Source, error) {
	r, err := f.remote(f.topo.Owner(name).Addr)
	if err != nil {
		return nil, err
	}
	return r.OpenSource(ctx, name, schema)
}

// Subscribe implements Broker: the session lands on the edge chosen by
// rendezvous hashing of the group key (source, app, canonical spec).
// Routing by group is what makes the dedup global — every subscriber
// of a group reaches the same edge, so the whole deployment carries
// one upstream leg per (core, group).
func (f *Federated) Subscribe(ctx context.Context, app, source, spec string, opts ...SubOption) (Subscription, error) {
	sp, err := specFor(spec)
	if err != nil {
		return nil, err
	}
	edge, err := federate.EdgeFor(federate.GroupKey(source, app, sp.String()), f.edges)
	if err != nil {
		return nil, err
	}
	r, err := f.remote(edge.Addr)
	if err != nil {
		return nil, err
	}
	return r.Subscribe(ctx, app, source, spec, opts...)
}

// Close implements Broker: closes every per-node handle (publisher
// sessions finish gracefully, subscriber sessions leave their groups).
// The servers keep running.
func (f *Federated) Close(ctx context.Context) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	open := make([]*Remote, 0, len(f.remotes))
	for _, r := range f.remotes {
		open = append(open, r)
	}
	f.remotes = nil
	f.mu.Unlock()
	var errs []error
	for _, r := range open {
		if err := r.Close(ctx); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
