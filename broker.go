package gasf

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gasf/internal/broker"
	"gasf/internal/quality"
	"gasf/internal/server"
)

// This file defines the unified, context-first streaming API: one Broker
// contract served by two transports — NewEmbedded (in-process, on the
// sharded runtime directly) and Dial (TCP, against a gasf-server). The
// same publish/subscribe/churn program runs unchanged on either; the
// parity test suite holds the two to byte-identical released sequences
// per subscriber. The batch Run/RunSharded entry points are thin
// wrappers over an embedded broker, and the older Client type is a
// deprecated veneer over the same wire sessions Dial uses.

// Broker is the unified streaming surface: long-lived sources publish
// indefinitely, applications join and leave a source's filter group at
// tuple boundaries (the paper's group re-derivation, §4.3), and every
// blocking operation takes a context for cancellation and deadlines.
//
// Implementations: NewEmbedded runs the group-aware engines in-process
// on the sharded runtime; Dial drives a gasf-server over TCP. Both obey
// the same contract, verified byte-for-byte by the parity suite.
type Broker interface {
	// OpenSource registers a live source under a unique name. Tuples may
	// be published and subscribers may join as soon as it returns.
	OpenSource(ctx context.Context, name string, schema *Schema) (Source, error)
	// Subscribe joins a source's live filter group with a quality
	// specification in the paper's notation (e.g. "DC1(temperature,
	// 0.5, 0.25)"). The spec is parsed and validated before it travels:
	// rendering is lossless (ParseSpec(s.String()) == s), so the spec a
	// subscription reports is exactly the one the group coordinates on.
	// The join happens at a tuple boundary without disturbing the
	// source's other subscribers.
	Subscribe(ctx context.Context, app, source, spec string, opts ...SubOption) (Subscription, error)
	// Close releases the broker: the embedded transport drains its
	// runtime (flushing every engine tail through its subscribers); the
	// networked transport closes the sessions it opened. ctx bounds the
	// graceful path.
	Close(ctx context.Context) error
}

// Source is one live publisher session. Timestamps must be strictly
// increasing per source — the engine's region algebra depends on it —
// and every tuple must use the schema advertised at OpenSource.
type Source interface {
	// Name returns the source name.
	Name() string
	// Schema returns the advertised schema.
	Schema() *Schema
	// Publish sends one tuple, blocking under backpressure until ctx is
	// done.
	Publish(ctx context.Context, t *Tuple) error
	// PublishBatch sends a run of tuples in one hand-off: one write on
	// the wire, one ring synchronization in-process.
	PublishBatch(ctx context.Context, tuples []*Tuple) error
	// Sync is the publish barrier: when it returns, every previously
	// published tuple is ordered at the engine ahead of any membership
	// change applied afterwards. In-process publishing is already
	// synchronous, so the embedded Sync is a no-op; over TCP it round
	// trips a ping through the server's ingest path.
	Sync(ctx context.Context) error
	// Finish ends the stream gracefully: the engine's tail is flushed to
	// the source's subscribers and their streams end.
	Finish(ctx context.Context) error
}

// Subscription is one live application session in a source's filter
// group.
type Subscription interface {
	// App returns the application name.
	App() string
	// Source returns the subscribed source name.
	Source() string
	// Schema returns the source schema.
	Schema() *Schema
	// Spec returns the parsed quality specification in effect.
	Spec() Spec
	// Recv blocks for the next delivery until ctx is done. It returns
	// ErrStreamEnded once the stream ends gracefully.
	Recv(ctx context.Context) (*Delivery, error)
	// RecvInto is Recv decoding into d, reusing d's tuple and label
	// storage where the transport allows; everything reachable from d is
	// valid only until the next RecvInto with the same Delivery.
	RecvInto(ctx context.Context, d *Delivery) error
	// QoS returns the quality scale currently applied to this
	// subscription by the degrade slow-consumer policy: 1 means full
	// fidelity, larger means the effective spec has been coarsened by
	// that factor under overload. Always 1 under other policies (and on
	// the networked transport until the server's first QoS announcement
	// arrives).
	QoS() float64
	// Close leaves the group at a tuple boundary, re-deriving it for the
	// remaining members. When Close returns, the departure has been
	// applied.
	Close(ctx context.Context) error
}

// Delivery is one transmission received by a subscription: the tuple,
// the destination labels of the subscribers sharing it (pruned to the
// members live at release time), and the receive instant. Against a
// durable broker (WithDurability, or a server started with -data-dir)
// Offset is the delivery's position in the source's durable log — the
// checkpoint a later WithResumeFrom(offset+1) subscription resumes
// from.
type Delivery = broker.Delivery

// specFor parses and validates a subscription spec once at the facade,
// so both transports coordinate on the identical, canonically rendered
// specification.
func specFor(spec string) (quality.Spec, error) {
	sp, err := quality.Parse(spec)
	if err != nil {
		return quality.Spec{}, err
	}
	return sp, nil
}

// ErrEvicted reports that the broker force-detached a subscription — it
// blocked past the eviction timeout, or exceeded the drop threshold set
// with WithEvictAfterDrops (embedded) or ServerConfig.EvictAfterDrops
// (networked). Recv errors wrap it with the reason; check with
// errors.Is(err, gasf.ErrEvicted). Distinct from ErrStreamEnded: an
// evicted consumer lost deliveries, a gracefully ended one did not.
var ErrEvicted = errors.New("gasf: subscriber evicted")

// mapStreamEnd folds the transports' end-of-stream and eviction
// sentinels into the public ones shared by both paths.
func mapStreamEnd(err error) error {
	if errors.Is(err, broker.ErrStreamEnded) {
		return ErrStreamEnded
	}
	if errors.Is(err, broker.ErrEvicted) || errors.Is(err, server.ErrEvicted) {
		return fmt.Errorf("%w: %v", ErrEvicted, err)
	}
	return err
}

// dialTimeoutFor derives a session dial timeout from the caller context
// and the configured default.
func dialTimeoutFor(ctx context.Context, def time.Duration) time.Duration {
	if deadline, ok := ctx.Deadline(); ok {
		if d := time.Until(deadline); def <= 0 || d < def {
			return d
		}
	}
	return def
}

// errBrokerClosed rejects operations on a closed broker handle.
var errBrokerClosed = fmt.Errorf("gasf: broker closed")
