// Command gasf-shardbench measures the sharded multi-source runtime over
// the GOMAXPROCS × shards × sources scaling matrix the ROADMAP tracks and
// records the results as JSON (BENCH_shard.json in the repository) so
// later performance PRs have a trajectory to beat.
//
// Each flush pays a modeled blocking dissemination cost (-delay; the
// paper's testbed measures an application-level multicast invocation cost
// of roughly 12 ms, §4.1.2). That cost dominates a deployed source node's
// send path, and sharding overlaps it across sources — which is what the
// speedup column quantifies. Run with -delay 0 to measure pure engine CPU
// throughput instead.
//
// Usage:
//
//	gasf-shardbench -out BENCH_shard.json -tuples 100 -delay 2ms -procs 1,4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"gasf/internal/metrics"
	"gasf/internal/shard"
)

// report is the serialized benchmark record.
type report struct {
	// Schema documents the measurement for future readers.
	Schema string `json:"schema"`
	// GeneratedAt is the wall-clock time of the run.
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
	// TuplesPerSource and DisseminationDelayUS are the workload knobs.
	TuplesPerSource      int     `json:"tuples_per_source"`
	FiltersPerSource     int     `json:"filters_per_source"`
	DisseminationDelayUS float64 `json:"dissemination_delay_us"`
	Cells                []cell  `json:"cells"`
}

// cell is one matrix measurement plus its speedup over the 1-shard
// baseline at the same GOMAXPROCS and source count (the seed's
// sequential regime).
type cell struct {
	shard.CellResult
	SpeedupVs1Shard float64 `json:"speedup_vs_1_shard"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_shard.json", "output JSON path")
		tuples  = flag.Int("tuples", 100, "tuples per source")
		filters = flag.Int("filters", 3, "filters per source group")
		delay   = flag.Duration("delay", 2*time.Millisecond, "modeled blocking dissemination cost per flush")
		procs   = flag.String("procs", "1,4", "comma-separated GOMAXPROCS values of the scaling matrix")
	)
	flag.Parse()
	procList, err := metrics.ParseIntList(*procs)
	if err == nil && len(procList) == 0 {
		err = fmt.Errorf("empty GOMAXPROCS list")
	}
	if err == nil {
		err = run(*out, *tuples, *filters, *delay, procList)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(out string, tuples, filters int, delay time.Duration, procList []int) error {
	rep := report{
		Schema: "gasf shard throughput matrix v2: batched ring runtime, DC1 groups over a shared " +
			"NAMOS trace, one producer per source, blocking dissemination cost per flush, " +
			"GOMAXPROCS x shards x sources cells",
		GeneratedAt:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:            runtime.Version(),
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		NumCPU:               runtime.NumCPU(),
		TuplesPerSource:      tuples,
		FiltersPerSource:     filters,
		DisseminationDelayUS: float64(delay) / float64(time.Microsecond),
	}
	type key struct{ procs, sources int }
	base := make(map[key]float64) // (procs, sources) -> 1-shard tuples/sec
	tb := metrics.NewTable("procs", "shards", "sources", "tuples", "elapsed", "tuples/s", "drain-run", "speedup vs 1 shard")
	for _, p := range procList {
		for _, sources := range []int{10, 100, 1000} {
			for _, shards := range []int{1, 2, 4, 8} {
				res, err := shard.RunCell(shard.CellConfig{
					Procs:              p,
					Shards:             shards,
					Sources:            sources,
					TuplesPerSource:    tuples,
					FiltersPerSource:   filters,
					DisseminationDelay: delay,
					Seed:               1,
				})
				if err != nil {
					return fmt.Errorf("cell procs=%d shards=%d sources=%d: %w", p, shards, sources, err)
				}
				c := cell{CellResult: res}
				k := key{p, sources}
				if shards == 1 {
					base[k] = res.TuplesPerSec
				}
				if b := base[k]; b > 0 {
					c.SpeedupVs1Shard = res.TuplesPerSec / b
				}
				rep.Cells = append(rep.Cells, c)
				tb.AddRow(fmt.Sprint(p), fmt.Sprint(shards), fmt.Sprint(sources), fmt.Sprint(res.Tuples),
					fmt.Sprintf("%.0fms", res.ElapsedMS), fmt.Sprintf("%.0f", res.TuplesPerSec),
					fmt.Sprintf("%.1f", res.AvgDrainRun), fmt.Sprintf("%.2fx", c.SpeedupVs1Shard))
			}
		}
	}
	fmt.Print(tb.String())
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", out)
	return nil
}
