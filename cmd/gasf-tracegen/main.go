// Command gasf-tracegen emits the synthetic data sources as CSV or JSON,
// for inspection or for feeding external tools.
//
// Usage:
//
//	gasf-tracegen -trace cow -n 5000 -seed 7 -format csv > cow.csv
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gasf/internal/trace"
	"gasf/internal/tuple"
)

func buildTrace(name string, n int, seed int64) (*tuple.Series, error) {
	cfg := trace.Config{N: n, Seed: seed}
	switch strings.ToLower(name) {
	case "namos":
		return trace.NAMOS(cfg)
	case "cow":
		return trace.Cow(cfg)
	case "seismic":
		return trace.Seismic(cfg)
	case "fire":
		return trace.FireHRR(cfg)
	case "chlorine":
		return trace.Chlorine(trace.ChlorineConfig{Config: cfg})
	default:
		return nil, fmt.Errorf("unknown trace %q (namos|cow|seismic|fire|chlorine)", name)
	}
}

type jsonTuple struct {
	Seq    int                `json:"seq"`
	TS     string             `json:"ts"`
	Values map[string]float64 `json:"values"`
}

func main() {
	var (
		name   = flag.String("trace", "namos", "data source: namos|cow|seismic|fire|chlorine")
		n      = flag.Int("n", 10000, "number of tuples")
		seed   = flag.Int64("seed", 1, "generator seed")
		format = flag.String("format", "csv", "output format: csv|json")
	)
	flag.Parse()

	sr, err := buildTrace(*name, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	names := sr.Schema().Names()
	switch strings.ToLower(*format) {
	case "csv":
		fmt.Fprintf(w, "seq,ts_ms,%s\n", strings.Join(names, ","))
		for i := 0; i < sr.Len(); i++ {
			t := sr.At(i)
			fmt.Fprintf(w, "%d,%d", t.Seq, t.TS.Sub(trace.Epoch).Milliseconds())
			for _, v := range t.Values {
				fmt.Fprintf(w, ",%g", v)
			}
			fmt.Fprintln(w)
		}
	case "json":
		enc := json.NewEncoder(w)
		for i := 0; i < sr.Len(); i++ {
			t := sr.At(i)
			jt := jsonTuple{Seq: t.Seq, TS: t.TS.Format("2006-01-02T15:04:05.000Z07:00"),
				Values: make(map[string]float64, len(names))}
			for j, nm := range names {
				jt.Values[nm] = t.Values[j]
			}
			if err := enc.Encode(jt); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(1)
	}
}
