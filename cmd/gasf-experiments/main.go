// Command gasf-experiments regenerates the paper's evaluation tables and
// figures (Chapters 4 and 5) plus the ablation studies.
//
// Usage:
//
//	gasf-experiments [-run ID] [-list] [-n tuples] [-seed s] [-runs k] [-quick]
//
// With no -run flag every experiment executes in paper order. Output is a
// text rendering of each table/figure's rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gasf/internal/experiments"
)

func main() {
	var (
		runID = flag.String("run", "", "experiment ID to run (default: all)")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
		n     = flag.Int("n", 10000, "trace length in tuples")
		seed  = flag.Int64("seed", 1, "random seed for traces and spec draws")
		runs  = flag.Int("runs", 10, "repetitions for box-plot experiments")
		quick = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Printf("%-12s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := experiments.Config{N: *n, Seed: *seed, Runs: *runs, Quick: *quick}
	var runners []experiments.Runner
	if *runID == "" {
		runners = experiments.Registry()
	} else {
		r, err := experiments.Find(*runID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}

	for _, r := range runners {
		start := time.Now()
		rep, err := r.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s — %s (%.1fs)\n\n%s\n", rep.ID, r.Title, time.Since(start).Seconds(), rep.Text)
	}
}
