// Command gasf-run executes one group of filters over one data source and
// prints the group-aware filtering statistics next to the self-interested
// baseline.
//
// Usage:
//
//	gasf-run -trace namos -spec 'DC1(fluoro, 3.0, 1.5)' -spec 'DC1(fluoro, 5.0, 2.5)' \
//	         -alg RG -cuts -maxdelay 60ms
//
// Traces: namos, cow, seismic, fire, chlorine, example (the paper's
// ten-tuple running example).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/metrics"
	"gasf/internal/quality"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// specList collects repeated -spec flags.
type specList []string

func (s *specList) String() string { return strings.Join(*s, "; ") }

func (s *specList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func buildTrace(name string, n int, seed int64) (*tuple.Series, error) {
	cfg := trace.Config{N: n, Seed: seed}
	switch strings.ToLower(name) {
	case "namos":
		return trace.NAMOS(cfg)
	case "cow":
		return trace.Cow(cfg)
	case "seismic":
		return trace.Seismic(cfg)
	case "fire":
		return trace.FireHRR(cfg)
	case "chlorine":
		return trace.Chlorine(trace.ChlorineConfig{Config: cfg})
	case "example":
		return trace.PaperExample(), nil
	default:
		return nil, fmt.Errorf("unknown trace %q", name)
	}
}

func main() {
	var specs specList
	var (
		traceName = flag.String("trace", "namos", "data source: namos|cow|seismic|fire|chlorine|example")
		n         = flag.Int("n", 10000, "trace length in tuples")
		seed      = flag.Int64("seed", 1, "trace seed")
		alg       = flag.String("alg", "RG", "algorithm: RG|PS")
		cuts      = flag.Bool("cuts", false, "enable timely cuts")
		maxDelay  = flag.Duration("maxdelay", 60*time.Millisecond, "group time constraint for cuts")
		strategy  = flag.String("strategy", "region", "output strategy: region|pcs|batched")
		batch     = flag.Int("batch", 100, "batch size for the batched strategy")
		mc        = flag.Duration("multicast", 12*time.Millisecond, "constant delivery delay")
		verbose   = flag.Bool("v", false, "print every transmission")
	)
	flag.Var(&specs, "spec", "filter specification (repeatable), e.g. 'DC1(fluoro, 3.0, 1.5)'")
	flag.Parse()

	if err := run(specs, *traceName, *n, *seed, *alg, *cuts, *maxDelay, *strategy, *batch, *mc, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(specs specList, traceName string, n int, seed int64, alg string, cuts bool,
	maxDelay time.Duration, strategy string, batch int, mc time.Duration, verbose bool) error {
	if len(specs) == 0 {
		return fmt.Errorf("at least one -spec is required")
	}
	sr, err := buildTrace(traceName, n, seed)
	if err != nil {
		return err
	}
	var filters []filter.Filter
	for i, text := range specs {
		sp, err := quality.Parse(text)
		if err != nil {
			return err
		}
		f, err := sp.Build(fmt.Sprintf("app%d", i+1))
		if err != nil {
			return err
		}
		filters = append(filters, f)
	}

	opts := core.Options{Cuts: cuts, MulticastDelay: mc}
	if cuts {
		opts.MaxDelay = maxDelay
	}
	switch strings.ToUpper(alg) {
	case "RG":
		opts.Algorithm = core.RG
	case "PS":
		opts.Algorithm = core.PS
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}
	switch strings.ToLower(strategy) {
	case "region":
		opts.Strategy = core.EarliestRegion
	case "pcs":
		opts.Strategy = core.PerCandidateSet
	case "batched":
		opts.Strategy = core.Batched
		opts.BatchSize = batch
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}

	res, err := core.Run(filters, sr, opts)
	if err != nil {
		return err
	}
	si, err := core.RunSelfInterested(filters, sr, opts)
	if err != nil {
		return err
	}

	if verbose {
		for _, tr := range res.Transmissions {
			fmt.Printf("%v -> %v @%s\n", tr.Tuple, tr.Destinations, tr.ReleasedAt.Format("15:04:05.000"))
		}
	}

	tb := metrics.NewTable("metric", "group-aware", "self-interested")
	tb.AddRow("input tuples", fmt.Sprint(res.Stats.Inputs), fmt.Sprint(si.Stats.Inputs))
	tb.AddRow("distinct outputs", fmt.Sprint(res.Stats.DistinctOutputs), fmt.Sprint(si.Stats.DistinctOutputs))
	tb.AddRow("O/I ratio", fmt.Sprintf("%.4f", res.Stats.OIRatio()), fmt.Sprintf("%.4f", si.Stats.OIRatio()))
	tb.AddRow("transmissions", fmt.Sprint(res.Stats.Transmissions), fmt.Sprint(si.Stats.Transmissions))
	tb.AddRow("deliveries", fmt.Sprint(res.Stats.Deliveries), fmt.Sprint(si.Stats.Deliveries))
	tb.AddRow("mean latency", res.Stats.MeanLatency().String(), si.Stats.MeanLatency().String())
	tb.AddRow("CPU per tuple", res.Stats.CPUPerTuple().String(), si.Stats.CPUPerTuple().String())
	tb.AddRow("regions (cut)", fmt.Sprintf("%d (%d)", res.Stats.Regions, res.Stats.RegionsCut), "-")
	fmt.Print(tb.String())

	if si.Stats.DistinctOutputs > 0 {
		ratio := float64(res.Stats.DistinctOutputs) / float64(si.Stats.DistinctOutputs)
		fmt.Printf("\noutput ratio (GA/SI): %.4f — group awareness saves %.1f%% bandwidth\n",
			ratio, 100*(1-ratio))
	}
	return nil
}
