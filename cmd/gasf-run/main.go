// Command gasf-run executes one group of filters over one data source and
// prints the group-aware filtering statistics next to the self-interested
// baseline. With -sources > 1 it replicates the group over that many
// sources and drives them through the sharded multi-source runtime,
// printing per-shard counters and aggregate throughput.
//
// Usage:
//
//	gasf-run -trace namos -spec 'DC1(fluoro, 3.0, 1.5)' -spec 'DC1(fluoro, 5.0, 2.5)' \
//	         -alg RG -cuts -maxdelay 60ms
//	gasf-run -trace namos -n 2000 -spec 'DC1(fluoro, 3.0, 1.5)' \
//	         -sources 100 -shards 4 -queue 128 -flushbatch 32
//
// Traces: namos, cow, seismic, fire, chlorine, example (the paper's
// ten-tuple running example).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gasf"
	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/metrics"
	"gasf/internal/quality"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// specList collects repeated -spec flags.
type specList []string

func (s *specList) String() string { return strings.Join(*s, "; ") }

func (s *specList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// config is the parsed command line.
type config struct {
	specs      specList
	traceName  string
	n          int
	seed       int64
	alg        string
	cuts       bool
	maxDelay   time.Duration
	strategy   string
	batch      int
	mc         time.Duration
	verbose    bool
	sources    int
	shards     int
	queue      int
	flushBatch int
}

// errPrinted marks errors the FlagSet already reported to errW, so main
// does not print them a second time.
type errPrinted struct{ error }

func (e errPrinted) Unwrap() error { return e.error }

// parseFlags parses the command line into a config. It is split from main
// so tests can drive it; errors (including -h) are returned, not fatal.
// The FlagSet's own diagnostics (usage, unknown flags) go to errW.
func parseFlags(args []string, errW io.Writer) (config, error) {
	var cfg config
	fs := flag.NewFlagSet("gasf-run", flag.ContinueOnError)
	fs.SetOutput(errW)
	fs.StringVar(&cfg.traceName, "trace", "namos", "data source: namos|cow|seismic|fire|chlorine|example")
	fs.IntVar(&cfg.n, "n", 10000, "trace length in tuples")
	fs.Int64Var(&cfg.seed, "seed", 1, "trace seed")
	fs.StringVar(&cfg.alg, "alg", "RG", "algorithm: RG|PS")
	fs.BoolVar(&cfg.cuts, "cuts", false, "enable timely cuts")
	fs.DurationVar(&cfg.maxDelay, "maxdelay", 60*time.Millisecond, "group time constraint for cuts")
	fs.StringVar(&cfg.strategy, "strategy", "region", "output strategy: region|pcs|batched")
	fs.IntVar(&cfg.batch, "batch", 100, "batch size for the batched strategy")
	fs.DurationVar(&cfg.mc, "multicast", 12*time.Millisecond, "constant delivery delay")
	fs.BoolVar(&cfg.verbose, "v", false, "print every transmission")
	fs.IntVar(&cfg.sources, "sources", 1, "replicate the group over this many sources (sharded runtime when > 1)")
	fs.IntVar(&cfg.shards, "shards", 0, "worker shards for the sharded runtime (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.queue, "queue", 0, "per-shard input queue depth (0 = default)")
	fs.IntVar(&cfg.flushBatch, "flushbatch", 0, "released-output flush batch size (0 = default)")
	fs.Var(&cfg.specs, "spec", "filter specification (repeatable), e.g. 'DC1(fluoro, 3.0, 1.5)'")
	if err := fs.Parse(args); err != nil {
		return cfg, errPrinted{err}
	}
	if len(cfg.specs) == 0 {
		return cfg, fmt.Errorf("at least one -spec is required")
	}
	if cfg.sources < 1 {
		return cfg, fmt.Errorf("-sources must be at least 1, got %d", cfg.sources)
	}
	return cfg, nil
}

// engineOptions maps the textual flags onto engine options, including the
// shard runtime knobs.
func (c config) engineOptions() (core.Options, error) {
	opts := core.Options{
		Cuts:           c.cuts,
		MulticastDelay: c.mc,
		ShardCount:     c.shards,
		QueueDepth:     c.queue,
		FlushBatch:     c.flushBatch,
	}
	if c.cuts {
		opts.MaxDelay = c.maxDelay
	}
	switch strings.ToUpper(c.alg) {
	case "RG":
		opts.Algorithm = core.RG
	case "PS":
		opts.Algorithm = core.PS
	default:
		return opts, fmt.Errorf("unknown algorithm %q", c.alg)
	}
	switch strings.ToLower(c.strategy) {
	case "region":
		opts.Strategy = core.EarliestRegion
	case "pcs":
		opts.Strategy = core.PerCandidateSet
	case "batched":
		opts.Strategy = core.Batched
		opts.BatchSize = c.batch
	default:
		return opts, fmt.Errorf("unknown strategy %q", c.strategy)
	}
	return opts, nil
}

func buildTrace(name string, n int, seed int64) (*tuple.Series, error) {
	cfg := trace.Config{N: n, Seed: seed}
	switch strings.ToLower(name) {
	case "namos":
		return trace.NAMOS(cfg)
	case "cow":
		return trace.Cow(cfg)
	case "seismic":
		return trace.Seismic(cfg)
	case "fire":
		return trace.FireHRR(cfg)
	case "chlorine":
		return trace.Chlorine(trace.ChlorineConfig{Config: cfg})
	case "example":
		return trace.PaperExample(), nil
	default:
		return nil, fmt.Errorf("unknown trace %q", name)
	}
}

// buildFilters instantiates one fresh filter group from the specs.
func buildFilters(specs []string) ([]filter.Filter, error) {
	var filters []filter.Filter
	for i, text := range specs {
		sp, err := quality.Parse(text)
		if err != nil {
			return nil, err
		}
		f, err := sp.Build(fmt.Sprintf("app%d", i+1))
		if err != nil {
			return nil, err
		}
		filters = append(filters, f)
	}
	return filters, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return
	}
	if err == nil {
		err = run(cfg, os.Stdout)
	}
	if err != nil {
		if _, printed := err.(errPrinted); !printed {
			fmt.Fprintln(os.Stderr, err)
		}
		os.Exit(1)
	}
}

func run(cfg config, w io.Writer) error {
	sr, err := buildTrace(cfg.traceName, cfg.n, cfg.seed)
	if err != nil {
		return err
	}
	opts, err := cfg.engineOptions()
	if err != nil {
		return err
	}
	if cfg.sources > 1 {
		return runSharded(cfg, sr, opts, w)
	}
	filters, err := buildFilters(cfg.specs)
	if err != nil {
		return err
	}

	res, err := core.Run(filters, sr, opts)
	if err != nil {
		return err
	}
	si, err := core.RunSelfInterested(filters, sr, opts)
	if err != nil {
		return err
	}

	if cfg.verbose {
		for _, tr := range res.Transmissions {
			fmt.Fprintf(w, "%v -> %v @%s\n", tr.Tuple, tr.Destinations, tr.ReleasedAt.Format("15:04:05.000"))
		}
	}

	tb := metrics.NewTable("metric", "group-aware", "self-interested")
	tb.AddRow("input tuples", fmt.Sprint(res.Stats.Inputs), fmt.Sprint(si.Stats.Inputs))
	tb.AddRow("distinct outputs", fmt.Sprint(res.Stats.DistinctOutputs), fmt.Sprint(si.Stats.DistinctOutputs))
	tb.AddRow("O/I ratio", fmt.Sprintf("%.4f", res.Stats.OIRatio()), fmt.Sprintf("%.4f", si.Stats.OIRatio()))
	tb.AddRow("transmissions", fmt.Sprint(res.Stats.Transmissions), fmt.Sprint(si.Stats.Transmissions))
	tb.AddRow("deliveries", fmt.Sprint(res.Stats.Deliveries), fmt.Sprint(si.Stats.Deliveries))
	tb.AddRow("mean latency", res.Stats.MeanLatency().String(), si.Stats.MeanLatency().String())
	tb.AddRow("CPU per tuple", res.Stats.CPUPerTuple().String(), si.Stats.CPUPerTuple().String())
	tb.AddRow("regions (cut)", fmt.Sprintf("%d (%d)", res.Stats.Regions, res.Stats.RegionsCut), "-")
	fmt.Fprint(w, tb.String())

	if si.Stats.DistinctOutputs > 0 {
		ratio := float64(res.Stats.DistinctOutputs) / float64(si.Stats.DistinctOutputs)
		fmt.Fprintf(w, "\noutput ratio (GA/SI): %.4f — group awareness saves %.1f%% bandwidth\n",
			ratio, 100*(1-ratio))
	}
	return nil
}

// runSharded replicates the quality-spec group over cfg.sources live
// sources on an embedded Broker — the unified streaming surface — with
// one delivery subscription per spec, reporting per-shard counters,
// delivery volume, and aggregate throughput.
func runSharded(cfg config, sr *tuple.Series, opts core.Options, w io.Writer) error {
	if cfg.verbose {
		fmt.Fprintln(w, "note: -v prints transmissions only in single-source mode; ignored with -sources > 1")
	}
	ctx := context.Background()
	b, err := gasf.NewEmbedded(gasf.WithEngineOptions(opts))
	if err != nil {
		return err
	}
	start := time.Now()
	var (
		wg         sync.WaitGroup
		deliveries atomic.Uint64
		errMu      sync.Mutex
		errs       []error
	)
	record := func(err error) {
		errMu.Lock()
		errs = append(errs, err)
		errMu.Unlock()
	}
	consume := func(sub gasf.Subscription) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var d gasf.Delivery
			for {
				if err := sub.RecvInto(ctx, &d); err != nil {
					if !errors.Is(err, gasf.ErrStreamEnded) {
						record(err)
					}
					return
				}
				deliveries.Add(1)
			}
		}()
	}
	for i := 0; i < cfg.sources; i++ {
		name := fmt.Sprintf("src%04d", i)
		src, err := b.OpenSource(ctx, name, sr.Schema())
		if err != nil {
			return err
		}
		for j, spec := range cfg.specs {
			sub, err := b.Subscribe(ctx, fmt.Sprintf("app%d", j+1), name, spec, gasf.WithQueueDepth(1024))
			if err != nil {
				return err
			}
			consume(sub)
		}
		wg.Add(1)
		go func(src gasf.Source) {
			defer wg.Done()
			if err := src.PublishBatch(ctx, sr.Tuples()); err != nil {
				record(err)
				return
			}
			if err := src.Finish(ctx); err != nil {
				record(err)
			}
		}(src)
	}
	wg.Wait()
	if err := b.Close(ctx); err != nil {
		record(err)
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	results, snaps := b.Results(), b.Metrics()
	elapsed := time.Since(start)

	tb := metrics.NewTable("shard", "sources", "enqueued", "processed", "dropped", "flushes", "max queue")
	for _, s := range snaps {
		tb.AddRow(fmt.Sprint(s.Shard), fmt.Sprint(s.Sources), fmt.Sprint(s.Enqueued),
			fmt.Sprint(s.Processed), fmt.Sprint(s.Dropped), fmt.Sprint(s.Flushes),
			fmt.Sprint(s.MaxQueueDepth))
	}
	fmt.Fprint(w, tb.String())

	var inputs, outputs int
	for _, res := range results {
		inputs += res.Stats.Inputs
		outputs += res.Stats.DistinctOutputs
	}
	fmt.Fprintf(w, "\nsources %d  shards %d  tuples %d  deliveries %d  elapsed %v  throughput %.0f tuples/s\n",
		cfg.sources, len(snaps), inputs, deliveries.Load(), elapsed.Round(time.Millisecond),
		float64(inputs)/elapsed.Seconds())
	if inputs > 0 {
		fmt.Fprintf(w, "aggregate O/I ratio: %.4f\n", float64(outputs)/float64(inputs))
	}
	return nil
}
