package main

import (
	"io"
	"strings"
	"testing"
	"time"

	"gasf/internal/core"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags([]string{"-spec", "DC1(fluoro, 3.0, 1.5)"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.traceName != "namos" || cfg.n != 10000 || cfg.seed != 1 {
		t.Errorf("trace defaults wrong: %+v", cfg)
	}
	if cfg.alg != "RG" || cfg.strategy != "region" || cfg.cuts {
		t.Errorf("engine defaults wrong: %+v", cfg)
	}
	if cfg.sources != 1 || cfg.shards != 0 || cfg.queue != 0 || cfg.flushBatch != 0 {
		t.Errorf("shard defaults wrong: %+v", cfg)
	}
	if len(cfg.specs) != 1 || cfg.specs[0] != "DC1(fluoro, 3.0, 1.5)" {
		t.Errorf("specs = %v", cfg.specs)
	}
}

func TestParseFlagsRepeatedSpecsAndShardKnobs(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-spec", "DC1(fluoro, 3.0, 1.5)",
		"-spec", "DC1(fluoro, 5.0, 2.5)",
		"-trace", "cow", "-n", "500", "-seed", "9",
		"-alg", "PS", "-strategy", "batched", "-batch", "25",
		"-cuts", "-maxdelay", "90ms",
		"-sources", "50", "-shards", "4", "-queue", "64", "-flushbatch", "16",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.specs) != 2 {
		t.Errorf("specs = %v", cfg.specs)
	}
	if cfg.traceName != "cow" || cfg.n != 500 || cfg.seed != 9 {
		t.Errorf("trace flags wrong: %+v", cfg)
	}
	if cfg.sources != 50 || cfg.shards != 4 || cfg.queue != 64 || cfg.flushBatch != 16 {
		t.Errorf("shard flags wrong: %+v", cfg)
	}
	if !cfg.cuts || cfg.maxDelay != 90*time.Millisecond {
		t.Errorf("cut flags wrong: %+v", cfg)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	if _, err := parseFlags(nil, io.Discard); err == nil {
		t.Error("missing -spec should fail")
	}
	if _, err := parseFlags([]string{"-spec", "DC1(f,1,0.4)", "-sources", "0"}, io.Discard); err == nil {
		t.Error("-sources 0 should fail")
	}
	err := func() error {
		_, err := parseFlags([]string{"-bogus"}, io.Discard)
		return err
	}()
	if err == nil {
		t.Error("unknown flag should fail")
	}
	// FlagSet errors are marked as already printed so main does not
	// report them twice; our own validation errors are not.
	if _, printed := err.(errPrinted); !printed {
		t.Errorf("flag error %v should be marked printed", err)
	}
	if _, err := parseFlags(nil, io.Discard); err != nil {
		if _, printed := err.(errPrinted); printed {
			t.Errorf("validation error %v should not be marked printed", err)
		}
	}
}

func TestEngineOptionsMapping(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-spec", "DC1(fluoro, 3.0, 1.5)",
		"-alg", "ps", "-strategy", "batched", "-batch", "7",
		"-cuts", "-maxdelay", "80ms", "-multicast", "5ms",
		"-shards", "3", "-queue", "9", "-flushbatch", "2",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := cfg.engineOptions()
	if err != nil {
		t.Fatal(err)
	}
	if opts.Algorithm != core.PS || opts.Strategy != core.Batched || opts.BatchSize != 7 {
		t.Errorf("engine mapping wrong: %+v", opts)
	}
	if !opts.Cuts || opts.MaxDelay != 80*time.Millisecond || opts.MulticastDelay != 5*time.Millisecond {
		t.Errorf("cut mapping wrong: %+v", opts)
	}
	if opts.ShardCount != 3 || opts.QueueDepth != 9 || opts.FlushBatch != 2 {
		t.Errorf("shard mapping wrong: %+v", opts)
	}

	cfg.alg = "WAT"
	if _, err := cfg.engineOptions(); err == nil {
		t.Error("unknown algorithm should fail")
	}
	cfg.alg, cfg.strategy = "RG", "yolo"
	if _, err := cfg.engineOptions(); err == nil {
		t.Error("unknown strategy should fail")
	}
}

func TestBuildTraceNames(t *testing.T) {
	for _, name := range []string{"namos", "cow", "seismic", "fire", "chlorine", "example"} {
		sr, err := buildTrace(name, 50, 1)
		if err != nil {
			t.Errorf("trace %s: %v", name, err)
			continue
		}
		if sr.Len() == 0 {
			t.Errorf("trace %s is empty", name)
		}
	}
	if _, err := buildTrace("ghost", 50, 1); err == nil {
		t.Error("unknown trace should fail")
	}
}

func TestRunSingleSource(t *testing.T) {
	cfg, err := parseFlags([]string{"-trace", "example", "-spec", "DC1(temperature, 50, 10)"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(cfg, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"O/I ratio", "group-aware", "self-interested", "output ratio (GA/SI)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSharded(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-trace", "namos", "-n", "120",
		"-spec", "DC1(fluoro, 0.10, 0.05)", "-spec", "DC1(fluoro, 0.22, 0.10)",
		"-sources", "12", "-shards", "3", "-queue", "8", "-flushbatch", "4",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(cfg, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"shard", "sources 12", "shards 3", "tuples/s", "aggregate O/I ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
