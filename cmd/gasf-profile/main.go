// Command gasf-profile runs the hot-path benchmark harness
// (internal/bench): the per-tuple core step, the wire encode/decode paths
// and the networked open-loop serve benchmark, with optional pprof
// capture. It writes BENCH_hotpath.json and can compare the run against a
// committed baseline with a soft regression threshold, which is how the
// CI benchmark smoke job keeps the allocation-free hot path honest.
//
// Usage:
//
//	gasf-profile -out BENCH_hotpath.json
//	gasf-profile -quick -cpuprofile cpu.pprof -memprofile mem.pprof
//	gasf-profile -quick -baseline BENCH_hotpath.json -threshold 0.5 [-strict]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"gasf/internal/bench"
	"gasf/internal/metrics"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gasf-profile:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gasf-profile", flag.ContinueOnError)
	var (
		out        = fs.String("out", "BENCH_hotpath.json", "report path (- for stdout only)")
		quick      = fs.Bool("quick", false, "shrink workloads for a smoke run")
		serve      = fs.Bool("serve", true, "include the networked open-loop serve benchmark")
		publishers = fs.Int("publishers", 0, "serve publishers (0 = default)")
		subs       = fs.Int("subscribers", 0, "serve subscribers (0 = default)")
		tuples     = fs.Int("tuples", 0, "serve tuples per publisher (0 = default)")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile of the whole run")
		memProf    = fs.String("memprofile", "", "write a heap profile after the run")
		baseline   = fs.String("baseline", "", "compare against a committed BENCH_hotpath.json")
		threshold  = fs.Float64("threshold", 0.30, "soft regression threshold (fraction)")
		strict     = fs.Bool("strict", false, "exit non-zero on regressions instead of warning")
		matrix     = fs.String("matrix", "", "comma-separated GOMAXPROCS values for the open-loop serve scaling matrix (empty = skip)")
		matrixSh   = fs.String("matrix-shards", "", "comma-separated shard counts for the scaling matrix (default: same as -matrix)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	matrixProcs, err := metrics.ParseIntList(*matrix)
	if err != nil {
		return err
	}
	matrixShards, err := metrics.ParseIntList(*matrixSh)
	if err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	rep, err := bench.Run(bench.Config{
		Quick:           *quick,
		Serve:           *serve,
		Publishers:      *publishers,
		Subscribers:     *subs,
		TuplesPerSource: *tuples,
		MatrixProcs:     matrixProcs,
		MatrixShards:    matrixShards,
	})
	if err != nil {
		return err
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", enc)
	if *out != "-" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			return err
		}
		var base bench.Report
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parsing baseline %s: %w", *baseline, err)
		}
		regressions := bench.Compare(rep, &base, *threshold)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "gasf-profile: WARNING:", r)
		}
		if len(regressions) > 0 && *strict {
			return fmt.Errorf("%d benchmark regression(s) beyond the %.0f%% threshold", len(regressions), 100**threshold)
		}
		if len(regressions) == 0 {
			fmt.Fprintln(os.Stderr, "gasf-profile: within baseline thresholds")
		}
	}
	return nil
}
