// Federated mode for gasf-loadbench: an in-process federation — one
// core owning the sources, two edges holding the subscriber sessions —
// driven through gasf.DialFederated over real TCP. Subscribers are
// grouped so several sessions share each (source, app, spec) group, and
// the run reports the upstream dedup ratio the edge tier achieves (local
// sessions per core→edge leg) together with the relay delivery latency
// the edges observe. Results merge into -out under the "federation" key
// and soft-gate against the previous run via internal/bench.Compare.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"gasf"
	"gasf/internal/bench"
)

// fedSharing is how many subscriber sessions share each group: the
// designed dedup factor. The report asserts the edge tier actually
// achieves it — one upstream leg per group, however many members.
const fedSharing = 4

// federatedConfig parameterizes one federated run.
type federatedConfig struct {
	publishers, subscribers, tuples, queue int
}

// fedLatency is a relay latency pair in milliseconds.
type fedLatency struct {
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	Count uint64  `json:"count"`
}

// federatedReport is the "federation" section of BENCH_serve.json.
type federatedReport struct {
	Cores            int `json:"cores"`
	Edges            int `json:"edges"`
	Publishers       int `json:"publishers"`
	Subscribers      int `json:"subscribers"`
	TuplesPerSource  int `json:"tuples_per_source"`
	SharingPerGroup  int `json:"sharing_per_group"`
	UpstreamLegs     int `json:"upstream_legs"`
	LocalSubscribers int `json:"local_subscribers"`
	// UpstreamDedupRatio is local subscriber sessions per core→edge leg
	// across the edge tier — the bandwidth multiplier group-aware
	// federation exists to deliver.
	UpstreamDedupRatio float64 `json:"upstream_dedup_ratio"`
	// RelayLatency is the worst edge's sampled relay delivery latency
	// (tuple source timestamp to edge egress write) — max across edges,
	// so the number never flatters a lagging node.
	RelayLatency     fedLatency `json:"relay_latency"`
	Deliveries       int        `json:"deliveries"`
	ElapsedSec       float64    `json:"elapsed_sec"`
	DeliveriesPerSec float64    `json:"deliveries_per_sec"`
}

// runFederated executes federated mode and merges the section into out.
func runFederated(cfg federatedConfig, out string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// One core owning every source; it learns the (single-node) ring
	// once its own address is known, exactly as an operator would
	// bootstrap a tier.
	core, err := gasf.StartServer(gasf.ServerConfig{
		Federation:      gasf.FederationConfig{Role: gasf.RoleCore, Self: "c0"},
		SubscriberQueue: cfg.queue,
	})
	if err != nil {
		return err
	}
	defer core.Close()
	coreNodes := []gasf.FederationNode{{Name: "c0", Addr: core.Addr().String()}}
	if err := core.UpdatePeers(coreNodes); err != nil {
		return err
	}

	edges := make([]*gasf.Server, 2)
	edgeNodes := make([]gasf.FederationNode, len(edges))
	for i := range edges {
		name := fmt.Sprintf("e%d", i)
		if edges[i], err = gasf.StartServer(gasf.ServerConfig{
			Federation:      gasf.FederationConfig{Role: gasf.RoleEdge, Self: name, Peers: coreNodes},
			SubscriberQueue: cfg.queue,
		}); err != nil {
			return err
		}
		defer edges[i].Close()
		edgeNodes[i] = gasf.FederationNode{Name: name, Addr: edges[i].Addr().String()}
	}

	b, err := gasf.DialFederated(gasf.FormatPeers(coreNodes), gasf.FormatPeers(edgeNodes))
	if err != nil {
		return err
	}
	schema, err := gasf.NewSchema("v")
	if err != nil {
		return err
	}
	pubs := make([]gasf.Source, cfg.publishers)
	for i := range pubs {
		if pubs[i], err = b.OpenSource(ctx, fmt.Sprintf("fed%d", i), schema); err != nil {
			return err
		}
	}

	// fedSharing consecutive sessions share each group — same source,
	// same app, same spec — so the whole group crosses the core→edge
	// link once. Groups round-robin over the sources.
	groups := (cfg.subscribers + fedSharing - 1) / fedSharing
	subs := make([]gasf.Subscription, cfg.subscribers)
	for i := range subs {
		g := i / fedSharing
		source := fmt.Sprintf("fed%d", g%cfg.publishers)
		app := fmt.Sprintf("grp%d", g)
		if subs[i], err = b.Subscribe(ctx, app, source, "DC1(v, 0.5, 0)"); err != nil {
			return err
		}
	}

	// The dedup numbers are read now, while every session is attached:
	// legs tear down with their last member, so a post-storm snapshot
	// would see an empty edge tier.
	var legs, local int
	for _, e := range edges {
		st := e.FederationStats()
		legs += st.UpstreamLegs
		local += st.LocalSubscribers
	}
	if legs != groups {
		return fmt.Errorf("edge tier carries %d upstream legs for %d groups — dedup broken", legs, groups)
	}
	if local != cfg.subscribers {
		return fmt.Errorf("edge tier holds %d local sessions, want %d", local, cfg.subscribers)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, cfg.publishers+cfg.subscribers)
	counts := make([]int, cfg.subscribers)
	start := time.Now()
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub gasf.Subscription) {
			defer wg.Done()
			var d gasf.Delivery
			for {
				err := sub.RecvInto(ctx, &d)
				if errors.Is(err, gasf.ErrStreamEnded) {
					return
				}
				if err != nil {
					errCh <- fmt.Errorf("subscriber %d: %w", i, err)
					return
				}
				counts[i]++
			}
		}(i, sub)
	}
	// The same batched, wall-clock-stamped load generation as the storm
	// bench: step-1 values are pass-all under DC1(v, 0.5, 0), and the
	// wall-clock stamps are what the edges' relay latency samples
	// measure against.
	const pubBatch = 256
	for i, pub := range pubs {
		wg.Add(1)
		go func(i int, pub gasf.Source) {
			defer wg.Done()
			batch := make([]*gasf.Tuple, 0, pubBatch)
			backing := make([]float64, pubBatch)
			lastTS := time.Time{}
			for n := 0; n < cfg.tuples; {
				k := min(cfg.tuples-n, pubBatch)
				batch = batch[:0]
				ts := time.Now()
				for j := 0; j < k; j++ {
					if !ts.After(lastTS) {
						ts = lastTS.Add(time.Nanosecond)
					}
					backing[j] = float64(n + j)
					tp, err := gasf.NewTuple(schema, n+j, ts, backing[j:j+1])
					if err != nil {
						errCh <- fmt.Errorf("publisher %d tuple %d: %w", i, n+j, err)
						return
					}
					batch = append(batch, tp)
					lastTS = ts
					ts = ts.Add(time.Nanosecond)
				}
				if err := pub.PublishBatch(ctx, batch); err != nil {
					errCh <- fmt.Errorf("publisher %d tuple %d: %w", i, n, err)
					return
				}
				n += k
			}
			if err := pub.Finish(ctx); err != nil {
				errCh <- fmt.Errorf("publisher %d finish: %w", i, err)
			}
		}(i, pub)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return err
	}

	// Every member of every group must see the full filtered stream:
	// n publishes release n-1 sets live (the engine holds the last one
	// open), and Finish flushes the held tail — exactly n deliveries.
	want := cfg.tuples
	deliveries := 0
	for i, n := range counts {
		if n != want {
			return fmt.Errorf("subscriber %d received %d deliveries, want %d (relay fan-out lost or duplicated)", i, n, want)
		}
		deliveries += n
	}

	// Relay latency survives leg teardown — it lives on the edge, not
	// the leg. Max across edges: the worst node is the honest number.
	var relay fedLatency
	for _, e := range edges {
		st := e.FederationStats()
		r := st.Relay
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		if ms(r.P99) > relay.P99Ms {
			relay = fedLatency{P50Ms: ms(r.P50), P99Ms: ms(r.P99), Count: r.Count}
		}
	}
	if relay.Count == 0 {
		return fmt.Errorf("edges sampled no relay latency — relay path not exercised")
	}

	rep := federatedReport{
		Cores:              1,
		Edges:              len(edges),
		Publishers:         cfg.publishers,
		Subscribers:        cfg.subscribers,
		TuplesPerSource:    cfg.tuples,
		SharingPerGroup:    fedSharing,
		UpstreamLegs:       legs,
		LocalSubscribers:   local,
		UpstreamDedupRatio: float64(local) / float64(legs),
		RelayLatency:       relay,
		Deliveries:         deliveries,
		ElapsedSec:         elapsed.Seconds(),
		DeliveriesPerSec:   float64(deliveries) / elapsed.Seconds(),
	}
	fmt.Fprintf(os.Stderr, "federated: %d legs for %d sessions (dedup %.1fx), relay p99 %.2fms\n",
		legs, local, rep.UpstreamDedupRatio, relay.P99Ms)

	closeCtx, closeCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer closeCancel()
	if err := b.Close(closeCtx); err != nil {
		return fmt.Errorf("client close: %w", err)
	}
	for _, e := range edges {
		if err := e.Shutdown(closeCtx); err != nil {
			return fmt.Errorf("edge shutdown: %w", err)
		}
	}
	if err := core.Shutdown(closeCtx); err != nil {
		return fmt.Errorf("core shutdown: %w", err)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", enc)
	if out == "-" {
		return nil
	}
	// Soft-gate against the previous committed section before replacing
	// it, with the same Compare machinery as the overload gate: a
	// collapsed dedup ratio or a relay latency blow-up warns loudly.
	if prev, err := os.ReadFile(out); err == nil {
		var base struct {
			Federation *federatedReport `json:"federation"`
		}
		if json.Unmarshal(prev, &base) == nil && base.Federation != nil {
			regs := bench.Compare(
				&bench.Report{
					UpstreamDedupRatio:   rep.UpstreamDedupRatio,
					FederationRelayP99Ms: rep.RelayLatency.P99Ms,
				},
				&bench.Report{
					UpstreamDedupRatio:   base.Federation.UpstreamDedupRatio,
					FederationRelayP99Ms: base.Federation.RelayLatency.P99Ms,
				}, 0.5)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "gasf-loadbench: WARNING:", r)
			}
		}
	}
	doc := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(out); err == nil && len(prev) > 0 {
		if err := json.Unmarshal(prev, &doc); err != nil {
			return fmt.Errorf("merging into %s: %w", out, err)
		}
	}
	doc["federation"] = json.RawMessage(enc)
	merged, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(merged, '\n'), 0o644)
}
