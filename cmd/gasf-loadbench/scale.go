// Scale mode (-sources): instead of a publish/receive storm, the bench
// measures the server's per-source liveness machinery at population
// scale. A population of N sources is cycled through the server in
// waves of -resident concurrent raw-frame sessions (connect, handshake,
// disconnect), the final wave is held open and idle, and the run
// reports heap bytes per idle source, flow-gap expiry latency, wheel
// and sketch statistics, and the gap-reconnect detection rate for a
// reconnect wave of long-silent names. Results merge into -out under
// the "idle_sources" key so the paced serve numbers in the same file
// survive.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"runtime"
	"sync"
	"syscall"
	"time"

	"gasf"
	"gasf/internal/server"
	"gasf/internal/tuple"
)

// discardLogger silences per-session log lines during scale runs.
func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func shutdownCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 30*time.Second)
}

// idleSourcesReport is the "idle_sources" section of BENCH_serve.json.
type idleSourcesReport struct {
	Sources         int     `json:"sources"`
	Resident        int     `json:"resident"`
	SourceTimeoutMs float64 `json:"source_timeout_ms"`
	ScanIntervalMs  float64 `json:"scan_interval_ms"`

	// Connect covers the whole population sweep: every source dialed,
	// handshaken and (for non-resident waves) disconnected.
	ConnectElapsedSec float64 `json:"connect_elapsed_sec"`
	ConnectsPerSec    float64 `json:"connects_per_sec"`

	// The idle hold: resident sessions open and silent. Heap is the
	// post-GC HeapInuse delta over the pre-resident baseline; CPU is the
	// process rusage delta across the hold (wheel advance + runtime, no
	// traffic).
	HoldSec               float64 `json:"hold_sec"`
	HeapIdleBytes         uint64  `json:"heap_idle_bytes"`
	HeapPerIdleSourceB    float64 `json:"heap_bytes_per_idle_source"`
	HoldCPUSec            float64 `json:"hold_cpu_sec"`
	HoldCPUPerSourceMicro float64 `json:"hold_cpu_us_per_source_sec"`

	// Expiry: how long after the hold the flow-gap detector took to
	// expire every resident source, and the server-measured lag between
	// each source's deadline and its expiry.
	ExpiryElapsedSec float64 `json:"expiry_elapsed_sec"`
	ExpiryLagP50Ms   float64 `json:"expiry_lag_p50_ms"`
	ExpiryLagP99Ms   float64 `json:"expiry_lag_p99_ms"`
	Expired          uint64  `json:"expired"`

	// Session closures split by cause, mirroring
	// gasf_source_closures_total: the sweep waves disconnect, the
	// resident set flow-gaps.
	ClosedFlowGap    uint64 `json:"closed_flow_gap"`
	ClosedDisconnect uint64 `json:"closed_disconnect"`

	WheelMaxBucketDepth int64  `json:"wheel_max_bucket_depth"`
	WheelInspections    uint64 `json:"wheel_inspections"`
	WheelReschedules    uint64 `json:"wheel_reschedules"`
	WheelCascades       uint64 `json:"wheel_cascades"`
	SketchCells         int    `json:"sketch_cells"`
	SketchOccupied      int64  `json:"sketch_occupied"`
	SketchEvictions     uint64 `json:"sketch_evictions"`

	// The reconnect wave: long-silent names reconnecting must be flagged
	// by the tier-2 sketch even though their sessions (and wheel
	// entries) are long gone.
	ReconnectWave       int     `json:"reconnect_wave"`
	ReconnectElapsedSec float64 `json:"reconnect_elapsed_sec"`
	GapReconnects       uint64  `json:"gap_reconnects"`
}

// scaleConfig parameterizes one scale run.
type scaleConfig struct {
	sources, resident int
	hold              time.Duration
	sourceTimeout     time.Duration
	maxHeapPerSource  int
}

// raiseFDLimit best-effort raises RLIMIT_NOFILE to its hard cap and
// returns the resulting soft limit.
func raiseFDLimit() uint64 {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 1024
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
		_ = syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
	return rl.Cur
}

// cpuSeconds returns the process CPU time (user+system) consumed so far.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	tv := func(t syscall.Timeval) float64 { return float64(t.Sec) + float64(t.Usec)/1e6 }
	return tv(ru.Utime) + tv(ru.Stime)
}

// heapInuse returns post-GC heap occupancy.
func heapInuse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// connectSources dials and handshakes sources[first..first+n) as raw
// publisher sessions and returns their connections. Local addresses
// cycle through 127.0.0.x so population sweeps cannot exhaust one
// address's ephemeral ports.
func connectSources(addr string, schema *tuple.Schema, first, n int) ([]net.Conn, error) {
	const dialWorkers = 64
	const localIPs = 8
	conns := make([]net.Conn, n)
	errs := make([]error, dialWorkers)
	var wg sync.WaitGroup
	for w := 0; w < dialWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += dialWorkers {
				idx := first + i
				d := net.Dialer{
					Timeout:   10 * time.Second,
					LocalAddr: &net.TCPAddr{IP: net.IPv4(127, 0, 0, byte(1+idx%localIPs))},
				}
				conn, err := d.Dial("tcp", addr)
				if err != nil {
					errs[w] = fmt.Errorf("dial source %d: %w", idx, err)
					return
				}
				hello, err := server.EncodeSourceHello(fmt.Sprintf("idle%d", idx), schema)
				if err == nil {
					err = server.WriteFrame(conn, server.FrameSourceHello, hello)
				}
				var kind byte
				if err == nil {
					kind, _, err = server.ReadFrame(conn)
				}
				if err == nil && kind != server.FrameHelloOK {
					err = fmt.Errorf("hello answered with frame kind %d", kind)
				}
				if err != nil {
					conn.Close()
					errs[w] = fmt.Errorf("handshake source %d: %w", idx, err)
					return
				}
				conns[i] = conn
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			closeConns(conns)
			return nil, err
		}
	}
	return conns, nil
}

func closeConns(conns []net.Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

// measureScale runs the population sweep, idle hold, expiry wait and
// reconnect wave against a fresh server.
func measureScale(cfg scaleConfig) (*idleSourcesReport, error) {
	fdLimit := raiseFDLimit()
	// A sweep wave holds 2x resident FDs (client+server end per conn),
	// plus listener/runtime overhead.
	if maxResident := int(fdLimit)/2 - 512; cfg.resident > maxResident {
		fmt.Fprintf(os.Stderr, "scale: clamping -resident %d to %d (RLIMIT_NOFILE %d)\n",
			cfg.resident, maxResident, fdLimit)
		cfg.resident = maxResident
	}
	if cfg.resident < 1 {
		return nil, fmt.Errorf("resident session budget exhausted by RLIMIT_NOFILE %d", fdLimit)
	}
	if cfg.resident > cfg.sources {
		cfg.resident = cfg.sources
	}

	srv, err := gasf.StartServer(gasf.ServerConfig{
		SourceTimeout: cfg.sourceTimeout,
		// Expiring thousands of sessions logs one warning each; the bench
		// only wants the numbers.
		Logger: discardLogger(),
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		sctx, cancel := shutdownCtx()
		defer cancel()
		srv.Shutdown(sctx)
	}()
	addr := srv.Addr().String()
	schema := tuple.MustSchema("v")

	rep := &idleSourcesReport{
		Sources:         cfg.sources,
		Resident:        cfg.resident,
		SourceTimeoutMs: float64(cfg.sourceTimeout) / float64(time.Millisecond),
		HoldSec:         cfg.hold.Seconds(),
	}

	// Population sweep: every non-resident source connects, handshakes
	// and disconnects, wave by wave, seeding the tier-2 sketch with far
	// more names than ever hold a session at once.
	connectStart := time.Now()
	swept := cfg.sources - cfg.resident
	for first := 0; first < swept; first += cfg.resident {
		n := min(cfg.resident, swept-first)
		conns, err := connectSources(addr, schema, first, n)
		if err != nil {
			return nil, fmt.Errorf("sweep wave at %d: %w", first, err)
		}
		closeConns(conns)
	}

	// Baseline after the churn has settled, then the resident set.
	heap0 := heapInuse()
	resident, err := connectSources(addr, schema, swept, cfg.resident)
	if err != nil {
		return nil, fmt.Errorf("resident wave: %w", err)
	}
	defer closeConns(resident)
	connectElapsed := time.Since(connectStart)
	rep.ConnectElapsedSec = connectElapsed.Seconds()
	rep.ConnectsPerSec = float64(cfg.sources) / connectElapsed.Seconds()
	if got := srv.Counters().SourcesActive; got != cfg.resident {
		return nil, fmt.Errorf("resident hold opened %d sessions, want %d", got, cfg.resident)
	}

	// Idle hold: nothing moves but the scan loop.
	cpu0 := cpuSeconds()
	time.Sleep(cfg.hold)
	holdCPU := cpuSeconds() - cpu0
	heap1 := heapInuse()
	if heap1 > heap0 {
		rep.HeapIdleBytes = heap1 - heap0
	}
	rep.HeapPerIdleSourceB = float64(rep.HeapIdleBytes) / float64(cfg.resident)
	rep.HoldCPUSec = holdCPU
	rep.HoldCPUPerSourceMicro = holdCPU / cfg.hold.Seconds() / float64(cfg.resident) * 1e6

	// Expiry: the resident set has been silent since its handshake; wait
	// for the flow-gap detector to clear it.
	expiryStart := time.Now()
	expiryDeadline := expiryStart.Add(cfg.sourceTimeout + 10*time.Second)
	for srv.Counters().SourcesActive > 0 {
		if time.Now().After(expiryDeadline) {
			return nil, fmt.Errorf("flow-gap expiry stalled: %d sources still active %v after the hold",
				srv.Counters().SourcesActive, time.Since(expiryStart))
		}
		time.Sleep(20 * time.Millisecond)
	}
	rep.ExpiryElapsedSec = time.Since(expiryStart).Seconds()
	closeConns(resident) // server already dropped them; release client FDs

	dbg := srv.Debug()
	if fg := dbg.FlowGap; fg != nil {
		rep.ScanIntervalMs = float64(fg.ScanInterval) / float64(time.Millisecond)
		rep.WheelMaxBucketDepth = fg.Wheel.MaxBucketDepth
		rep.WheelInspections = fg.Wheel.Inspections
		rep.WheelReschedules = fg.Wheel.Reschedules
		rep.WheelCascades = fg.Wheel.Cascades
		rep.SketchCells = fg.Sketch.Cells
		rep.SketchOccupied = fg.Sketch.Occupied
		rep.SketchEvictions = fg.Sketch.Evictions
		if lag := fg.ExpiryLag; lag != nil {
			rep.ExpiryLagP50Ms = float64(lag.P50) / float64(time.Millisecond)
			rep.ExpiryLagP99Ms = float64(lag.P99) / float64(time.Millisecond)
		}
	}

	// Reconnect wave: the oldest names in the population have been
	// silent far longer than the timeout; the sketch must flag their
	// return even though no session state survives for them.
	wave := min(cfg.resident, cfg.sources)
	recStart := time.Now()
	reconnected, err := connectSources(addr, schema, 0, wave)
	if err != nil {
		return nil, fmt.Errorf("reconnect wave: %w", err)
	}
	rep.ReconnectWave = wave
	rep.ReconnectElapsedSec = time.Since(recStart).Seconds()
	closeConns(reconnected)

	c := srv.Counters()
	rep.Expired = c.SourcesExpired
	rep.ClosedFlowGap = c.ClosedFlowGap
	rep.ClosedDisconnect = c.ClosedDisconnect
	rep.GapReconnects = c.GapReconnects

	// The observability surface must hold up at scale too: strict-parse
	// /metrics over HTTP the way the storm bench does.
	if _, err := scrapeServer(srv); err != nil {
		return nil, err
	}
	return rep, nil
}

// runScale executes scale mode and merges the section into out.
func runScale(cfg scaleConfig, out string) error {
	rep, err := measureScale(cfg)
	if err != nil {
		return err
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", enc)

	if out != "-" {
		// Merge under "idle_sources", preserving an existing report.
		doc := map[string]json.RawMessage{}
		if prev, err := os.ReadFile(out); err == nil && len(prev) > 0 {
			if err := json.Unmarshal(prev, &doc); err != nil {
				return fmt.Errorf("merging into %s: %w", out, err)
			}
		}
		doc["idle_sources"] = json.RawMessage(enc)
		merged, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(merged, '\n'), 0o644); err != nil {
			return err
		}
	}

	if cfg.maxHeapPerSource > 0 && rep.HeapPerIdleSourceB > float64(cfg.maxHeapPerSource) {
		return fmt.Errorf("heap per idle source %.0f B exceeds the -max-heap-per-source ceiling %d B",
			rep.HeapPerIdleSourceB, cfg.maxHeapPerSource)
	}
	if rep.Expired < uint64(cfg.resident) {
		return fmt.Errorf("only %d of %d resident sources expired", rep.Expired, cfg.resident)
	}
	return nil
}
