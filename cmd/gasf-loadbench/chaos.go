// Chaos mode for gasf-loadbench: a durable server is run behind a
// fault-injecting proxy (torn writes, latency spikes) and hard-killed
// mid-run; a restarted server over the same log directory is swapped in
// behind the proxy's stable front address. Publishers and subscribers
// ride gasf.WithReconnect the whole time, and the run fails unless
// every subscriber ends with the full, gapless, duplicate-free stream —
// dense log offsets and the exact expected sequence numbers across the
// restart. Results merge into -out under the "chaos" key.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gasf"
	"gasf/internal/faultnet"
)

// chaosConfig parameterizes one chaos run.
type chaosConfig struct {
	publishers, subscribers, tuples, queue int
	seed                                   int64
}

// chaosReport is the "chaos" section of BENCH_serve.json.
type chaosReport struct {
	Publishers              int     `json:"publishers"`
	Subscribers             int     `json:"subscribers"`
	TuplesPerSource         int     `json:"tuples_per_source"`
	FaultSeed               int64   `json:"fault_seed"`
	ServerRestarts          int     `json:"server_restarts"`
	DeliveriesPerSubscriber int     `json:"deliveries_per_subscriber"`
	ElapsedSec              float64 `json:"elapsed_sec"`
}

// chaosEpoch anchors the deterministic per-seq timestamp schedule; the
// engine only needs strictly increasing stamps per source, and deriving
// them from seq keeps them increasing across the restart too.
var chaosEpoch = time.Unix(1, 0)

// runChaos executes chaos mode and merges the section into out.
func runChaos(cfg chaosConfig, out string) error {
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	dir, err := os.MkdirTemp("", "gasf-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	srv, err := gasf.StartServer(gasf.ServerConfig{DataDir: dir, SubscriberQueue: cfg.queue})
	if err != nil {
		return err
	}
	proxy, err := faultnet.NewProxy(srv.Addr().String(), faultnet.Faults{
		Seed:          cfg.seed,
		PartialWrites: true,
		LatencyEvery:  29,
		Spike:         200 * time.Microsecond,
	})
	if err != nil {
		return err
	}
	defer proxy.Close()

	b, err := gasf.Dial(proxy.Addr(), gasf.WithReconnect(gasf.Backoff{
		Base: 20 * time.Millisecond,
		Max:  250 * time.Millisecond,
	}))
	if err != nil {
		return err
	}
	schema, err := gasf.NewSchema("v")
	if err != nil {
		return err
	}
	srcs := make([]gasf.Source, cfg.publishers)
	for i := range srcs {
		if srcs[i], err = b.OpenSource(ctx, fmt.Sprintf("chaos%d", i), schema); err != nil {
			return err
		}
	}

	// Every subscriber records its full (offset, seq) stream; each slice
	// is written only by its own consumer goroutine and read after the
	// consumers are done.
	type subStream struct {
		offs []uint64
		seqs []int
	}
	streams := make([]subStream, cfg.subscribers)
	counts := make([]atomic.Int64, cfg.subscribers)
	subs := make([]gasf.Subscription, cfg.subscribers)
	for i := range subs {
		app := fmt.Sprintf("app%d", i)
		source := fmt.Sprintf("chaos%d", i%cfg.publishers)
		if subs[i], err = b.Subscribe(ctx, app, source, "DC1(v, 0.5, 0)"); err != nil {
			return err
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, cfg.subscribers)
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub gasf.Subscription) {
			defer wg.Done()
			for {
				d, err := sub.Recv(ctx)
				if errors.Is(err, gasf.ErrStreamEnded) {
					return
				}
				if err != nil {
					errCh <- fmt.Errorf("subscriber %d: %w", i, err)
					return
				}
				streams[i].offs = append(streams[i].offs, d.Offset)
				streams[i].seqs = append(streams[i].seqs, d.Tuple.Seq)
				counts[i].Add(1)
			}
		}(i, sub)
	}

	// publish streams [from, to) into every source with step-1 values
	// (pass-all under DC1(v, 0.5, 0)) and syncs, so the replay window is
	// acknowledged before anything else happens.
	publish := func(from, to int) error {
		const pubBatch = 256
		backing := make([]float64, pubBatch)
		batch := make([]*gasf.Tuple, 0, pubBatch)
		for _, src := range srcs {
			for n := from; n < to; {
				k := min(to-n, pubBatch)
				batch = batch[:0]
				for j := 0; j < k; j++ {
					seq := n + j
					backing[j] = float64(seq)
					tp, err := gasf.NewTuple(schema, seq,
						chaosEpoch.Add(time.Duration(seq)*time.Millisecond), backing[j:j+1])
					if err != nil {
						return err
					}
					batch = append(batch, tp)
				}
				if err := src.PublishBatch(ctx, batch); err != nil {
					return err
				}
				n += k
			}
			if err := src.Sync(ctx); err != nil {
				return err
			}
		}
		return nil
	}
	waitCounts := func(n int, what string) error {
		deadline := time.Now().Add(2 * time.Minute)
		for {
			ok := true
			for i := range counts {
				if counts[i].Load() < int64(n) {
					ok = false
					break
				}
			}
			if ok {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("timed out waiting for %s (want %d per subscriber)", what, n)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Wave 1, then the crash: hard server abort plus a partition of
	// every surviving relay. The engine holds each source's last tuple
	// open, so exactly half-1 deliveries precede the crash.
	half := cfg.tuples / 2
	if err := publish(0, half); err != nil {
		return fmt.Errorf("wave 1: %w", err)
	}
	if err := waitCounts(half-1, "pre-crash deliveries"); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "chaos: killing server after %d deliveries/subscriber\n", half-1)
	if err := srv.Close(); err != nil {
		return fmt.Errorf("hard close: %w", err)
	}
	proxy.CutAll()

	srv2, err := gasf.StartServer(gasf.ServerConfig{DataDir: dir, SubscriberQueue: cfg.queue})
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	proxy.SetBackend(srv2.Addr().String())
	proxy.CutAll()

	// Reattach the publishers first (the barrier forces each redial with
	// an empty, acknowledged replay window), then wait for every
	// subscriber's auto-resume to land before new data flows: a release
	// fanned out while no subscriber is attached belongs to nobody and
	// is gone, which would read as a gap.
	for _, src := range srcs {
		if err := src.Sync(ctx); err != nil {
			return fmt.Errorf("post-restart sync: %w", err)
		}
	}
	joinDeadline := time.Now().Add(2 * time.Minute)
	for len(srv2.Debug().Subscribers) < cfg.subscribers {
		if time.Now().After(joinDeadline) {
			return fmt.Errorf("only %d/%d subscribers auto-resumed after the restart",
				len(srv2.Debug().Subscribers), cfg.subscribers)
		}
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Fprintln(os.Stderr, "chaos: restarted server, all sessions resumed; publishing wave 2")

	if err := publish(half, cfg.tuples); err != nil {
		return fmt.Errorf("wave 2: %w", err)
	}
	if err := waitCounts(cfg.tuples-2, "post-crash deliveries"); err != nil {
		return err
	}
	for _, src := range srcs {
		if err := src.Finish(ctx); err != nil {
			return fmt.Errorf("finish: %w", err)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}

	// Gapless and duplicate-free, per subscriber: offsets dense from 0,
	// seqs exactly the released series — wave 1 minus its held-back tail
	// (seq half-1 was in the open set at the crash and is gone by
	// contract), then all of wave 2.
	want := cfg.tuples - 1
	for i := range streams {
		st := &streams[i]
		if len(st.offs) != want {
			return fmt.Errorf("subscriber %d: %d deliveries, want %d (loss or duplication across the restart)",
				i, len(st.offs), want)
		}
		for j, off := range st.offs {
			if off != uint64(j) {
				return fmt.Errorf("subscriber %d delivery %d carries offset %d (gap or duplicate across the restart)",
					i, j, off)
			}
			wantSeq := j
			if j >= half-1 {
				wantSeq = j + 1
			}
			if st.seqs[j] != wantSeq {
				return fmt.Errorf("subscriber %d delivery %d carries seq %d, want %d",
					i, j, st.seqs[j], wantSeq)
			}
		}
	}

	closeCtx, closeCancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer closeCancel()
	if err := b.Close(closeCtx); err != nil {
		return fmt.Errorf("client close: %w", err)
	}
	if err := srv2.Shutdown(closeCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}

	rep := chaosReport{
		Publishers:              cfg.publishers,
		Subscribers:             cfg.subscribers,
		TuplesPerSource:         cfg.tuples,
		FaultSeed:               cfg.seed,
		ServerRestarts:          1,
		DeliveriesPerSubscriber: want,
		ElapsedSec:              time.Since(start).Seconds(),
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", enc)
	if out != "-" {
		// Merge under "chaos", preserving an existing report.
		doc := map[string]json.RawMessage{}
		if prev, err := os.ReadFile(out); err == nil && len(prev) > 0 {
			if err := json.Unmarshal(prev, &doc); err != nil {
				return fmt.Errorf("merging into %s: %w", out, err)
			}
		}
		doc["chaos"] = json.RawMessage(enc)
		merged, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(merged, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}
