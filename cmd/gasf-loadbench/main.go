// Command gasf-loadbench measures the networked server over loopback: it
// starts an in-process gasf server, drives N publishers by M subscribers
// through real TCP sessions, and reports ingest throughput, delivery
// latency percentiles and bytes on the wire as JSON (BENCH_serve.json).
// After the storm it scrapes the server's observability surface: the
// /metrics exposition must pass the strict parser, and the /debug/gasf
// introspection dump supplies the server-side delivery-latency quantiles
// reported next to the client-observed percentiles.
//
// Usage:
//
//	gasf-loadbench -publishers 8 -subscribers 32 -tuples 20000 \
//	               -policy block -shards 4 -procs 4 \
//	               -matrix-procs 1,4 -matrix-shards 1,4 \
//	               -out BENCH_serve.json
//
// Each publisher streams its own source ("bench0".."benchN-1") with
// wall-clock timestamps; subscribers are spread round-robin across the
// sources with a pass-all spec, so delivery latency (client receive time
// minus source timestamp) covers ingest, group decision, release and
// fan-out. With -matrix-procs/-matrix-shards the report also carries an
// open-loop GOMAXPROCS × shards scaling matrix measured with the same
// session layout.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"gasf"
	"gasf/internal/bench"
	"gasf/internal/metrics"
	"gasf/internal/telemetry"
)

type latencyStats struct {
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// serverLatency carries the server's own view of delivery latency
// (tuple source timestamp to egress write), read from /debug/gasf:
// frugal-estimated quantiles, reported next to the client-observed
// percentiles so the two measurement points can be compared.
type serverLatency struct {
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	Count uint64  `json:"count"`
}

type report struct {
	Publishers      int    `json:"publishers"`
	Subscribers     int    `json:"subscribers"`
	TuplesPerSource int    `json:"tuples_per_source"`
	Policy          string `json:"policy"`
	// RatePerPublisher is the paced publish rate in tuples/sec; 0 means
	// an unthrottled open loop, whose latency percentiles measure
	// standing-queue drain rather than steady state — the two
	// configurations are not comparable.
	RatePerPublisher int          `json:"rate_per_publisher"`
	Pacing           string       `json:"pacing"`
	GOMAXPROCS       int          `json:"gomaxprocs"`
	NumCPU           int          `json:"num_cpu"`
	Shards           int          `json:"shards"`
	SubscriberQueue  int          `json:"subscriber_queue"`
	ElapsedSec       float64      `json:"elapsed_sec"`
	TuplesIn         uint64       `json:"tuples_in"`
	TuplesPerSec     float64      `json:"tuples_per_sec"`
	Deliveries       int          `json:"deliveries"`
	DeliveriesPerSec float64      `json:"deliveries_per_sec"`
	SubscriberDrops  uint64       `json:"subscriber_drops"`
	BytesIn          uint64       `json:"bytes_in"`
	BytesOut         uint64       `json:"bytes_out"`
	Latency          latencyStats `json:"delivery_latency"`
	// ServerLatency is the server-side delivery-latency view, scraped
	// from /debug/gasf after the storm (see serverLatency). The scrape
	// also strict-parses the /metrics exposition, so a malformed metrics
	// surface fails the bench.
	ServerLatency *serverLatency `json:"server_delivery_latency,omitempty"`
	// Replay* report the -resume mode: after the storm every subscriber
	// leaves and re-subscribes with WithResumeFrom(0) against the
	// durable log, draining its whole history — the rate is the server's
	// replay (catch-up) throughput.
	ReplayDeliveries       int     `json:"replay_deliveries,omitempty"`
	ReplayElapsedSec       float64 `json:"replay_elapsed_sec,omitempty"`
	ReplayDeliveriesPerSec float64 `json:"replay_deliveries_per_sec,omitempty"`
	// ScalingMatrix is the open-loop GOMAXPROCS × shards sweep (same
	// publisher/subscriber layout, unthrottled).
	ScalingMatrix []scaleCell `json:"scaling_matrix,omitempty"`
	// Overload is the -overload section: a sustained run publishing at
	// twice the subscribers' drain capacity under the degrade policy.
	// The run fails unless it survived losslessly (zero drops, zero
	// evictions) while actually degrading.
	Overload *overloadStats `json:"overload,omitempty"`
	// P99Under2xOverload mirrors Overload.P99Ms at the top level — the
	// acceptance number gated against the committed baseline via
	// internal/bench.Compare.
	P99Under2xOverload float64 `json:"p99_under_2x_overload,omitempty"`

	// Counter snapshots for mode-level assertions; not serialized.
	qosDegrades         uint64
	qosRestores         uint64
	subscriberEvictions uint64
	maxQoS              float64
}

// overloadStats is the "overload" section of BENCH_serve.json: what the
// 2x-overload run looked like and how the degrade policy absorbed it.
type overloadStats struct {
	Publishers          int     `json:"publishers"`
	Subscribers         int     `json:"subscribers"`
	TuplesPerSource     int     `json:"tuples_per_source"`
	RatePerPublisher    int     `json:"rate_per_publisher"`
	DrainPerSubscriber  int     `json:"drain_per_subscriber"`
	SubscriberQueue     int     `json:"subscriber_queue"`
	ElapsedSec          float64 `json:"elapsed_sec"`
	Deliveries          int     `json:"deliveries"`
	QoSDegrades         uint64  `json:"qos_degrades"`
	QoSRestores         uint64  `json:"qos_restores"`
	MaxScaleSeen        float64 `json:"max_scale_seen"`
	SubscriberDrops     uint64  `json:"subscriber_drops"`
	SubscriberEvictions uint64  `json:"subscriber_evictions"`
	P99Ms               float64 `json:"p99_ms"`
}

// scaleCell is one open-loop cell of the scaling matrix.
type scaleCell struct {
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Shards       int     `json:"shards"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	TuplesIn     uint64  `json:"tuples_in"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	Deliveries   int     `json:"deliveries"`
}

// benchConfig parameterizes one measured serve run.
type benchConfig struct {
	publishers, subscribers, tuples, queue, shards, rate int
	policy                                               gasf.SlowPolicy
	// resume runs the durable catch-up benchmark: the server writes a
	// segment log, the storm subscribers leave after their quota, and a
	// second wave resumes from offset 0 to measure replay throughput.
	resume bool
	// perRecv throttles every subscriber by sleeping this long per
	// delivery, capping its drain capacity at 1/perRecv tuples/sec —
	// the pressure source for the -overload mode.
	perRecv time.Duration
	// recvBuf pins each subscription's kernel receive buffer (bytes) so
	// consumer lag surfaces as TCP backpressure at the server instead of
	// vanishing into autotuned kernel buffering; 0 keeps OS defaults.
	recvBuf int
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gasf-loadbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gasf-loadbench", flag.ContinueOnError)
	var (
		publishers   = fs.Int("publishers", 8, "publisher (source) sessions")
		subscribers  = fs.Int("subscribers", 32, "subscriber sessions, spread across sources")
		tuples       = fs.Int("tuples", 20000, "tuples per publisher")
		queue        = fs.Int("queue", 1024, "per-subscriber send queue (release cycles)")
		policy       = fs.String("policy", "block", "slow-consumer policy: block or drop")
		shards       = fs.Int("shards", 0, "worker shards (0 = GOMAXPROCS)")
		rate         = fs.Int("rate", 0, "tuples/sec per publisher (0 = unthrottled open loop)")
		procs        = fs.Int("procs", 0, "GOMAXPROCS for the main run (0 = inherit)")
		matrixProcs  = fs.String("matrix-procs", "", "comma-separated GOMAXPROCS values for the open-loop scaling matrix (empty = skip)")
		matrixShards = fs.String("matrix-shards", "", "comma-separated shard counts for the scaling matrix (default: same as -matrix-procs)")
		out          = fs.String("out", "BENCH_serve.json", "report path (- for stdout only)")
		cpuProf      = fs.String("cpuprofile", "", "write a CPU profile of the measured run")
		resume       = fs.Bool("resume", false, "durable mode: log to a temp dir, then measure replay throughput of a full catch-up wave")

		overload       = fs.Bool("overload", false, "after the main run, measure a 2x sustained overload under the degrade policy (publishers paced at twice the subscribers' drain capacity); fails unless it is lossless, and records p99_under_2x_overload in -out")
		overloadTuples = fs.Int("overload-tuples", 8000, "tuples per publisher for the -overload run")

		chaos     = fs.Bool("chaos", false, "chaos mode: durable server behind a fault-injecting proxy, killed and restarted mid-run; verifies gapless, duplicate-free resumed delivery on every subscriber (skips the storm bench; merges a \"chaos\" section into -out)")
		chaosSeed = fs.Int64("chaos-seed", 1, "seed for the injected network faults in -chaos")

		federated = fs.Bool("federated", false, "federated mode: one core plus two edges in-process, subscriber sessions sharing groups; reports the upstream dedup ratio and relay latency (skips the storm bench; merges a \"federation\" section into -out)")

		sources       = fs.Int("sources", 0, "scale mode: cycle this many sources through the server in waves of -resident, hold the last wave idle, and measure per-source memory and flow-gap expiry (skips the storm bench; merges an idle_sources section into -out)")
		residentSrc   = fs.Int("resident", 5000, "scale mode: concurrent raw publisher sessions per wave (clamped to RLIMIT_NOFILE headroom)")
		hold          = fs.Duration("hold", 3*time.Second, "scale mode: idle hold over the resident set")
		scaleTimeout  = fs.Duration("source-timeout", 0, "scale mode: server flow-gap timeout (0 = 2x -hold, at least 2s)")
		maxHeapPerSrc = fs.Int("max-heap-per-source", 0, "scale mode: fail if heap bytes per idle source exceed this (0 = report only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sources > 0 {
		st := *scaleTimeout
		if st <= 0 {
			st = max(2*(*hold), 2*time.Second)
		}
		if st <= *hold {
			return fmt.Errorf("-source-timeout %v must exceed -hold %v or the resident set expires mid-hold", st, *hold)
		}
		return runScale(scaleConfig{
			sources:          *sources,
			resident:         *residentSrc,
			hold:             *hold,
			sourceTimeout:    st,
			maxHeapPerSource: *maxHeapPerSrc,
		}, *out)
	}
	if *publishers < 1 || *subscribers < 1 || *tuples < 1 {
		return fmt.Errorf("need at least one publisher, subscriber and tuple")
	}
	if *federated {
		return runFederated(federatedConfig{
			publishers:  *publishers,
			subscribers: *subscribers,
			tuples:      *tuples,
			queue:       *queue,
		}, *out)
	}
	if *chaos {
		if *tuples < 8 {
			return fmt.Errorf("-chaos needs at least 8 tuples per source to split across the restart")
		}
		return runChaos(chaosConfig{
			publishers:  *publishers,
			subscribers: *subscribers,
			tuples:      *tuples,
			queue:       *queue,
			seed:        *chaosSeed,
		}, *out)
	}
	pol, err := gasf.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	if *resume && pol != gasf.PolicyBlock {
		// The resume storm counts on every subscriber receiving its full
		// quota before leaving; dropped deliveries would hang it.
		return fmt.Errorf("-resume requires -policy block")
	}
	mp, err := metrics.ParseIntList(*matrixProcs)
	if err != nil {
		return err
	}
	ms, err := metrics.ParseIntList(*matrixShards)
	if err != nil {
		return err
	}
	if len(ms) == 0 {
		ms = mp
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	rep, err := measure(benchConfig{
		publishers:  *publishers,
		subscribers: *subscribers,
		tuples:      *tuples,
		queue:       *queue,
		shards:      *shards,
		rate:        *rate,
		policy:      pol,
		resume:      *resume,
	})
	if err != nil {
		return err
	}

	// The scaling matrix re-runs the open-loop configuration per
	// (GOMAXPROCS, shards) cell; the paced acceptance numbers above stay
	// untouched by the sweep.
	restore := runtime.GOMAXPROCS(0)
	for _, p := range mp {
		for _, sh := range ms {
			runtime.GOMAXPROCS(p)
			cellRep, err := measure(benchConfig{
				publishers:  *publishers,
				subscribers: *subscribers,
				tuples:      *tuples,
				queue:       *queue,
				shards:      sh,
				rate:        0,
				policy:      pol,
			})
			if err != nil {
				runtime.GOMAXPROCS(restore)
				return fmt.Errorf("matrix cell procs=%d shards=%d: %w", p, sh, err)
			}
			rep.ScalingMatrix = append(rep.ScalingMatrix, scaleCell{
				GOMAXPROCS:   p,
				Shards:       sh,
				ElapsedSec:   cellRep.ElapsedSec,
				TuplesIn:     cellRep.TuplesIn,
				TuplesPerSec: cellRep.TuplesPerSec,
				Deliveries:   cellRep.Deliveries,
			})
			fmt.Fprintf(os.Stderr, "matrix: procs=%d shards=%d %.0f tuples/s\n", p, sh, cellRep.TuplesPerSec)
		}
	}
	runtime.GOMAXPROCS(restore)

	if *overload {
		if err := measureOverload(rep, *overloadTuples, *shards, *out); err != nil {
			return err
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", enc)
	if *out != "-" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
	}
	if rep.TuplesPerSec < 1 {
		return fmt.Errorf("implausible throughput %.1f tuples/sec", rep.TuplesPerSec)
	}
	return nil
}

// measure runs one full serve benchmark: a fresh server, a dialed
// Broker whose sessions drive the load, the publish/receive storm, and a
// graceful shutdown. The load generator itself runs on the unified
// context-first API (gasf.Dial), so the measured path is exactly what
// applications use.
func measure(cfg benchConfig) (*report, error) {
	ctx := context.Background()
	scfg := gasf.ServerConfig{
		Engine:          gasf.Options{ShardCount: cfg.shards},
		SubscriberQueue: cfg.queue,
		Policy:          cfg.policy,
		// Bounded kernel buffering on both legs (paired with recvBuf on
		// the subscribe side) so a throttled consumer's lag reaches the
		// server's delivery queue as TCP backpressure within the run.
		SubscriberSendBuffer: cfg.recvBuf,
	}
	if cfg.resume {
		dir, err := os.MkdirTemp("", "gasf-loadbench-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		scfg.DataDir = dir
	}
	srv, err := gasf.StartServer(scfg)
	if err != nil {
		return nil, err
	}
	b, err := gasf.Dial(srv.Addr().String())
	if err != nil {
		return nil, err
	}
	schema, err := gasf.NewSchema("v")
	if err != nil {
		return nil, err
	}

	// Dial every session up front so the measured window covers steady
	// streaming, not connection setup.
	pubs := make([]gasf.Source, cfg.publishers)
	for i := range pubs {
		if pubs[i], err = b.OpenSource(ctx, fmt.Sprintf("bench%d", i), schema); err != nil {
			return nil, err
		}
	}
	subs := make([]gasf.Subscription, cfg.subscribers)
	for i := range subs {
		source := fmt.Sprintf("bench%d", i%cfg.publishers)
		app := fmt.Sprintf("app%d", i)
		var sopts []gasf.SubOption
		if cfg.recvBuf > 0 {
			sopts = append(sopts, gasf.WithRecvBuffer(cfg.recvBuf))
		}
		if subs[i], err = b.Subscribe(ctx, app, source, "DC1(v, 0.5, 0)", sopts...); err != nil {
			return nil, err
		}
	}

	var wg sync.WaitGroup
	latencies := make([][]time.Duration, cfg.subscribers)
	maxQoS := make([]float64, cfg.subscribers)
	errCh := make(chan error, cfg.publishers+cfg.subscribers)

	start := time.Now()
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub gasf.Subscription) {
			defer wg.Done()
			lats := make([]time.Duration, 0, cfg.tuples)
			var d gasf.Delivery
			for {
				err := sub.RecvInto(ctx, &d)
				if errors.Is(err, gasf.ErrStreamEnded) {
					break
				}
				if err != nil {
					errCh <- fmt.Errorf("subscriber %d: %w", i, err)
					break
				}
				lats = append(lats, d.ReceivedAt.Sub(d.Tuple.TS))
				// The throttle caps this subscriber's drain capacity; the
				// QoS probe rides on it because only throttled (-overload)
				// runs care about the applied degrade scale.
				if cfg.perRecv > 0 {
					if q := sub.QoS(); q > maxQoS[i] {
						maxQoS[i] = q
					}
					time.Sleep(cfg.perRecv)
				}
				// Resume mode: the pass-all spec over step-1 values makes
				// deliveries deterministic — each arriving tuple closes and
				// releases the previous one's singleton set, so exactly
				// tuples-1 deliveries precede Finish. Consuming that quota
				// and leaving frees the app name for the catch-up wave.
				if cfg.resume && len(lats) == cfg.tuples-1 {
					if err := sub.Close(ctx); err != nil {
						errCh <- fmt.Errorf("subscriber %d leave: %w", i, err)
					}
					break
				}
			}
			latencies[i] = lats
		}(i, sub)
	}
	// Paced publishing sends a burst every tick; unthrottled runs flood
	// with backpressure only (their latency tail then measures drain
	// time of the standing queue, not steady state). Each tick's burst
	// is published with batched writes (one syscall and one server-side
	// ring submission per pubBatch frames), so the load generator
	// measures the pipeline, not its own per-tuple syscalls.
	const tick = 5 * time.Millisecond
	const pubBatch = 256
	burst := cfg.tuples // unthrottled: one burst
	if cfg.rate > 0 {
		burst = int(float64(cfg.rate) * tick.Seconds())
		if burst < 1 {
			burst = 1
		}
	}
	for i, pub := range pubs {
		wg.Add(1)
		go func(i int, pub gasf.Source) {
			defer wg.Done()
			ticker := time.NewTicker(tick)
			defer ticker.Stop()
			batch := make([]*gasf.Tuple, 0, pubBatch)
			// backing holds the value cells for one burst; NewTuple copies
			// them, so the measured loop allocates no per-tuple value
			// slices of its own (matching the pre-migration generator).
			backing := make([]float64, pubBatch)
			lastTS := time.Time{}
			seq := 0
			// Values step by 1 so the DC1(v, 0.5, 0) subscribers treat
			// every tuple as a closed singleton set (pass-all). Wall-clock
			// stamps, strictly increasing within a burst, keep the
			// delivery latency measurement end to end.
			for n := 0; n < cfg.tuples; {
				end := n + burst
				if end > cfg.tuples {
					end = cfg.tuples
				}
				for n < end {
					k := end - n
					if k > pubBatch {
						k = pubBatch
					}
					batch = batch[:0]
					ts := time.Now()
					for j := 0; j < k; j++ {
						if !ts.After(lastTS) {
							ts = lastTS.Add(time.Nanosecond)
						}
						backing[j] = float64(n + j)
						t, err := gasf.NewTuple(schema, seq, ts, backing[j:j+1])
						if err != nil {
							errCh <- fmt.Errorf("publisher %d tuple %d: %w", i, n, err)
							return
						}
						batch = append(batch, t)
						lastTS = ts
						ts = ts.Add(time.Nanosecond)
						seq++
					}
					if err := pub.PublishBatch(ctx, batch); err != nil {
						errCh <- fmt.Errorf("publisher %d tuple %d: %w", i, n, err)
						return
					}
					n += k
				}
				if cfg.rate > 0 && n < cfg.tuples {
					<-ticker.C
				}
			}
			// Resume mode keeps the sources open: a finished source tears
			// down its group, and the catch-up wave still needs to join.
			if cfg.resume {
				return
			}
			if err := pub.Finish(ctx); err != nil {
				errCh <- fmt.Errorf("publisher %d finish: %w", i, err)
			}
		}(i, pub)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return nil, err
	}

	// The catch-up wave: every app re-subscribes with WithResumeFrom(0)
	// and drains its history from the durable log — at least the storm's
	// quota names each app, since every storm release happened while all
	// subscribers were still live.
	quota := cfg.tuples - 1
	var replayDeliveries int
	var replayElapsed time.Duration
	if cfg.resume {
		rstart := time.Now()
		var rwg sync.WaitGroup
		rerrCh := make(chan error, cfg.subscribers)
		for i := 0; i < cfg.subscribers; i++ {
			source := fmt.Sprintf("bench%d", i%cfg.publishers)
			app := fmt.Sprintf("app%d", i)
			sub, err := b.Subscribe(ctx, app, source, "DC1(v, 0.5, 0)", gasf.WithResumeFrom(0))
			if err != nil {
				return nil, fmt.Errorf("resume subscribe %s: %w", app, err)
			}
			rwg.Add(1)
			go func(i int, sub gasf.Subscription) {
				defer rwg.Done()
				var d gasf.Delivery
				for n := 0; n < quota; n++ {
					if err := sub.RecvInto(ctx, &d); err != nil {
						rerrCh <- fmt.Errorf("resume subscriber %d after %d deliveries: %w", i, n, err)
						return
					}
				}
				if err := sub.Close(ctx); err != nil {
					rerrCh <- fmt.Errorf("resume subscriber %d leave: %w", i, err)
				}
			}(i, sub)
		}
		rwg.Wait()
		replayElapsed = time.Since(rstart)
		close(rerrCh)
		for err := range rerrCh {
			return nil, err
		}
		replayDeliveries = cfg.subscribers * quota
		for _, pub := range pubs {
			if err := pub.Finish(ctx); err != nil {
				return nil, fmt.Errorf("finish after resume: %w", err)
			}
		}
	}

	c := srv.Counters()
	var all []time.Duration
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	pacing := "open-loop"
	if cfg.rate > 0 {
		pacing = "paced"
	}
	rep := &report{
		Publishers:       cfg.publishers,
		Subscribers:      cfg.subscribers,
		TuplesPerSource:  cfg.tuples,
		Policy:           cfg.policy.String(),
		RatePerPublisher: cfg.rate,
		Pacing:           pacing,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		Shards:           srv.Runtime().Shards(),
		SubscriberQueue:  cfg.queue,
		ElapsedSec:       elapsed.Seconds(),
		TuplesIn:         c.TuplesIn,
		TuplesPerSec:     float64(c.TuplesIn) / elapsed.Seconds(),
		Deliveries:       len(all),
		DeliveriesPerSec: float64(len(all)) / elapsed.Seconds(),
		SubscriberDrops:  c.SubscriberDrops,
		BytesIn:          c.BytesIn,
		BytesOut:         c.BytesOut,
		Latency:          summarize(all),

		qosDegrades:         c.QoSDegrades,
		qosRestores:         c.QoSRestores,
		subscriberEvictions: c.SubscriberEvictions,
	}
	for _, q := range maxQoS {
		if q > rep.maxQoS {
			rep.maxQoS = q
		}
	}
	if cfg.resume {
		rep.ReplayDeliveries = replayDeliveries
		rep.ReplayElapsedSec = replayElapsed.Seconds()
		if s := replayElapsed.Seconds(); s > 0 {
			rep.ReplayDeliveriesPerSec = float64(replayDeliveries) / s
		}
	}
	if rep.ServerLatency, err = scrapeServer(srv); err != nil {
		return nil, err
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Close(sctx); err != nil {
		return nil, fmt.Errorf("broker close: %w", err)
	}
	if err := srv.Shutdown(sctx); err != nil {
		return nil, fmt.Errorf("shutdown: %w", err)
	}
	return rep, nil
}

// measureOverload runs the -overload acceptance mode and attaches its
// results to rep: publishers pace at exactly twice the drain capacity
// of their throttled subscribers, so without intervention the queues
// diverge without bound. The degrade policy must absorb the overload by
// coarsening precision — losslessly (zero drops, zero evictions) and
// with bounded latency. The resulting p99 lands in
// rep.P99Under2xOverload, soft-gated against the committed baseline in
// out via internal/bench.Compare.
func measureOverload(rep *report, tuples, shards int, out string) error {
	// Each subscriber sleeps 1ms per delivery (drain capacity 1000
	// tuples/s); each source publishes at 2000/s. Under the
	// DC1(v, 0.5, 0) spec over step-1 values, scale 4 (delta 2) halves
	// the delivered rate to exactly the drain capacity — the governor's
	// sustainable operating point.
	const drain = 1000
	ocfg := benchConfig{
		publishers:  4,
		subscribers: 8,
		tuples:      tuples,
		queue:       64,
		shards:      shards,
		rate:        2 * drain,
		policy:      gasf.PolicyDegrade,
		perRecv:     time.Second / drain,
		recvBuf:     8 << 10,
	}
	fmt.Fprintf(os.Stderr, "overload: %d pub at %d tuples/s vs %d sub draining %d/s (degrade policy)\n",
		ocfg.publishers, ocfg.rate, ocfg.subscribers, drain)
	orep, err := measure(ocfg)
	if err != nil {
		return fmt.Errorf("overload run: %w", err)
	}
	if orep.SubscriberDrops != 0 {
		return fmt.Errorf("overload run dropped %d deliveries; the degrade policy must be lossless", orep.SubscriberDrops)
	}
	if orep.subscriberEvictions != 0 {
		return fmt.Errorf("overload run evicted %d subscribers; the degrade policy must never evict", orep.subscriberEvictions)
	}
	if orep.qosDegrades == 0 {
		return fmt.Errorf("overload run never degraded — not an overload (rate %d/s vs drain %d/s)", ocfg.rate, drain)
	}
	rep.Overload = &overloadStats{
		Publishers:          ocfg.publishers,
		Subscribers:         ocfg.subscribers,
		TuplesPerSource:     ocfg.tuples,
		RatePerPublisher:    ocfg.rate,
		DrainPerSubscriber:  drain,
		SubscriberQueue:     ocfg.queue,
		ElapsedSec:          orep.ElapsedSec,
		Deliveries:          orep.Deliveries,
		QoSDegrades:         orep.qosDegrades,
		QoSRestores:         orep.qosRestores,
		MaxScaleSeen:        orep.maxQoS,
		SubscriberDrops:     orep.SubscriberDrops,
		SubscriberEvictions: orep.subscriberEvictions,
		P99Ms:               orep.Latency.P99Ms,
	}
	rep.P99Under2xOverload = orep.Latency.P99Ms
	fmt.Fprintf(os.Stderr, "overload: p99 %.1fms, max scale %g, %d degrades / %d restores, zero drops\n",
		orep.Latency.P99Ms, orep.maxQoS, orep.qosDegrades, orep.qosRestores)

	// Soft-gate against the committed baseline with the same Compare
	// machinery and spirit as the hotpath bench: a blow-up past the
	// threshold warns loudly, and the refreshed number still lands in
	// -out for review.
	if out != "-" {
		if prev, err := os.ReadFile(out); err == nil {
			var base struct {
				P99 float64 `json:"p99_under_2x_overload"`
			}
			if json.Unmarshal(prev, &base) == nil && base.P99 > 0 {
				regs := bench.Compare(
					&bench.Report{P99Under2xOverloadMs: rep.P99Under2xOverload},
					&bench.Report{P99Under2xOverloadMs: base.P99}, 0.5)
				for _, r := range regs {
					fmt.Fprintln(os.Stderr, "gasf-loadbench: WARNING:", r)
				}
			}
		}
	}
	return nil
}

// scrapeServer exercises the observability surface the way a monitoring
// stack would — over HTTP against MetricsHandler — and returns the
// server-side delivery quantiles: /metrics must pass the strict
// exposition parser, and /debug/gasf supplies the frugal-estimated
// latency pair.
func scrapeServer(srv *gasf.Server) (*serverLatency, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	hs := &http.Server{Handler: srv.MetricsHandler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("scrape /metrics: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("read /metrics: %w", err)
	}
	if err := telemetry.Validate(body); err != nil {
		return nil, fmt.Errorf("/metrics exposition invalid: %w", err)
	}

	resp, err = http.Get(base + "/debug/gasf")
	if err != nil {
		return nil, fmt.Errorf("scrape /debug/gasf: %w", err)
	}
	var dbg struct {
		Telemetry *telemetry.Snapshot `json:"telemetry"`
	}
	err = json.NewDecoder(resp.Body).Decode(&dbg)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("decode /debug/gasf: %w", err)
	}
	if dbg.Telemetry == nil {
		return nil, nil
	}
	d := dbg.Telemetry.Delivery
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return &serverLatency{P50Ms: ms(d.P50), P99Ms: ms(d.P99), Count: d.Count}, nil
}

// summarize computes latency percentiles in milliseconds.
func summarize(lats []time.Duration) latencyStats {
	if len(lats) == 0 {
		return latencyStats{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p float64) float64 {
		i := int(p * float64(len(lats)-1))
		return ms(lats[i])
	}
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	return latencyStats{
		P50Ms:  pct(0.50),
		P90Ms:  pct(0.90),
		P95Ms:  pct(0.95),
		P99Ms:  pct(0.99),
		MeanMs: ms(sum / time.Duration(len(lats))),
		MaxMs:  ms(lats[len(lats)-1]),
	}
}
