// Command gasf-loadbench measures the networked server over loopback: it
// starts an in-process gasf server, drives N publishers by M subscribers
// through real TCP sessions, and reports ingest throughput, delivery
// latency percentiles and bytes on the wire as JSON (BENCH_serve.json).
//
// Usage:
//
//	gasf-loadbench -publishers 8 -subscribers 32 -tuples 20000 \
//	               -policy block -out BENCH_serve.json
//
// Each publisher streams its own source ("bench0".."benchN-1") with
// wall-clock timestamps; subscribers are spread round-robin across the
// sources with a pass-all spec, so delivery latency (client receive time
// minus source timestamp) covers ingest, group decision, release and
// fan-out.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"gasf/internal/core"
	"gasf/internal/server"
	"gasf/internal/tuple"
)

type latencyStats struct {
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

type report struct {
	Publishers      int    `json:"publishers"`
	Subscribers     int    `json:"subscribers"`
	TuplesPerSource int    `json:"tuples_per_source"`
	Policy          string `json:"policy"`
	// RatePerPublisher is the paced publish rate in tuples/sec; 0 means
	// an unthrottled open loop, whose latency percentiles measure
	// standing-queue drain rather than steady state — the two
	// configurations are not comparable.
	RatePerPublisher int          `json:"rate_per_publisher"`
	Pacing           string       `json:"pacing"`
	Shards           int          `json:"shards"`
	SubscriberQueue  int          `json:"subscriber_queue"`
	ElapsedSec       float64      `json:"elapsed_sec"`
	TuplesIn         uint64       `json:"tuples_in"`
	TuplesPerSec     float64      `json:"tuples_per_sec"`
	Deliveries       int          `json:"deliveries"`
	DeliveriesPerSec float64      `json:"deliveries_per_sec"`
	SubscriberDrops  uint64       `json:"subscriber_drops"`
	BytesIn          uint64       `json:"bytes_in"`
	BytesOut         uint64       `json:"bytes_out"`
	Latency          latencyStats `json:"delivery_latency"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gasf-loadbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gasf-loadbench", flag.ContinueOnError)
	var (
		publishers  = fs.Int("publishers", 8, "publisher (source) sessions")
		subscribers = fs.Int("subscribers", 32, "subscriber sessions, spread across sources")
		tuples      = fs.Int("tuples", 20000, "tuples per publisher")
		queue       = fs.Int("queue", 1024, "per-subscriber send queue")
		policy      = fs.String("policy", "block", "slow-consumer policy: block or drop")
		shards      = fs.Int("shards", 0, "worker shards (0 = GOMAXPROCS)")
		rate        = fs.Int("rate", 0, "tuples/sec per publisher (0 = unthrottled open loop)")
		out         = fs.String("out", "BENCH_serve.json", "report path (- for stdout only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *publishers < 1 || *subscribers < 1 || *tuples < 1 {
		return fmt.Errorf("need at least one publisher, subscriber and tuple")
	}
	pol, err := server.ParsePolicy(*policy)
	if err != nil {
		return err
	}

	srv, err := server.Start(server.Config{
		Engine:          core.Options{ShardCount: *shards},
		SubscriberQueue: *queue,
		Policy:          pol,
	})
	if err != nil {
		return err
	}
	addr := srv.Addr().String()
	schema, err := tuple.NewSchema("v")
	if err != nil {
		return err
	}

	// Dial every session up front so the measured window covers steady
	// streaming, not connection setup.
	pubs := make([]*server.Publisher, *publishers)
	for i := range pubs {
		if pubs[i], err = server.DialPublisher(addr, fmt.Sprintf("bench%d", i), schema); err != nil {
			return err
		}
	}
	subs := make([]*server.Subscriber, *subscribers)
	for i := range subs {
		source := fmt.Sprintf("bench%d", i%*publishers)
		app := fmt.Sprintf("app%d", i)
		if subs[i], err = server.DialSubscriber(addr, app, source, "DC1(v, 0.5, 0)"); err != nil {
			return err
		}
	}

	var wg sync.WaitGroup
	latencies := make([][]time.Duration, *subscribers)
	errCh := make(chan error, *publishers+*subscribers)

	start := time.Now()
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub *server.Subscriber) {
			defer wg.Done()
			lats := make([]time.Duration, 0, *tuples)
			for {
				d, err := sub.Recv()
				if err == server.ErrStreamEnded {
					break
				}
				if err != nil {
					errCh <- fmt.Errorf("subscriber %d: %w", i, err)
					break
				}
				lats = append(lats, d.ReceivedAt.Sub(d.Tuple.TS))
			}
			latencies[i] = lats
		}(i, sub)
	}
	// Paced publishing sends a burst every tick; unthrottled runs flood
	// with backpressure only (their latency tail then measures drain
	// time of the standing queue, not steady state).
	const tick = 5 * time.Millisecond
	burst := *tuples // unthrottled: one burst
	if *rate > 0 {
		burst = int(float64(*rate) * tick.Seconds())
		if burst < 1 {
			burst = 1
		}
	}
	for i, pub := range pubs {
		wg.Add(1)
		go func(i int, pub *server.Publisher) {
			defer wg.Done()
			ticker := time.NewTicker(tick)
			defer ticker.Stop()
			// Values step by 1 so the DC1(v, 0.5, 0) subscribers treat
			// every tuple as a closed singleton set (pass-all).
			for n := 0; n < *tuples; {
				for j := 0; j < burst && n < *tuples; j++ {
					if err := pub.PublishNow([]float64{float64(n)}); err != nil {
						errCh <- fmt.Errorf("publisher %d tuple %d: %w", i, n, err)
						return
					}
					n++
				}
				if *rate > 0 && n < *tuples {
					<-ticker.C
				}
			}
			if err := pub.Close(); err != nil {
				errCh <- fmt.Errorf("publisher %d close: %w", i, err)
			}
		}(i, pub)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return err
	}

	c := srv.Counters()
	var all []time.Duration
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	pacing := "open-loop"
	if *rate > 0 {
		pacing = "paced"
	}
	rep := report{
		Publishers:       *publishers,
		Subscribers:      *subscribers,
		TuplesPerSource:  *tuples,
		Policy:           pol.String(),
		RatePerPublisher: *rate,
		Pacing:           pacing,
		Shards:           srv.Runtime().Shards(),
		SubscriberQueue:  *queue,
		ElapsedSec:       elapsed.Seconds(),
		TuplesIn:         c.TuplesIn,
		TuplesPerSec:     float64(c.TuplesIn) / elapsed.Seconds(),
		Deliveries:       len(all),
		DeliveriesPerSec: float64(len(all)) / elapsed.Seconds(),
		SubscriberDrops:  c.SubscriberDrops,
		BytesIn:          c.BytesIn,
		BytesOut:         c.BytesOut,
		Latency:          summarize(all),
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", enc)
	if *out != "-" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if rep.TuplesPerSec < 1 {
		return fmt.Errorf("implausible throughput %.1f tuples/sec", rep.TuplesPerSec)
	}
	return nil
}

// summarize computes latency percentiles in milliseconds.
func summarize(lats []time.Duration) latencyStats {
	if len(lats) == 0 {
		return latencyStats{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p float64) float64 {
		i := int(p * float64(len(lats)-1))
		return ms(lats[i])
	}
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	return latencyStats{
		P50Ms:  pct(0.50),
		P90Ms:  pct(0.90),
		P95Ms:  pct(0.95),
		P99Ms:  pct(0.99),
		MeanMs: ms(sum / time.Duration(len(lats))),
		MaxMs:  ms(lats[len(lats)-1]),
	}
}
