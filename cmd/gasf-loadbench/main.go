// Command gasf-loadbench measures the networked server over loopback: it
// starts an in-process gasf server, drives N publishers by M subscribers
// through real TCP sessions, and reports ingest throughput, delivery
// latency percentiles and bytes on the wire as JSON (BENCH_serve.json).
//
// Usage:
//
//	gasf-loadbench -publishers 8 -subscribers 32 -tuples 20000 \
//	               -policy block -shards 4 -procs 4 \
//	               -matrix-procs 1,4 -matrix-shards 1,4 \
//	               -out BENCH_serve.json
//
// Each publisher streams its own source ("bench0".."benchN-1") with
// wall-clock timestamps; subscribers are spread round-robin across the
// sources with a pass-all spec, so delivery latency (client receive time
// minus source timestamp) covers ingest, group decision, release and
// fan-out. With -matrix-procs/-matrix-shards the report also carries an
// open-loop GOMAXPROCS × shards scaling matrix measured with the same
// session layout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"gasf/internal/core"
	"gasf/internal/metrics"
	"gasf/internal/server"
	"gasf/internal/tuple"
)

type latencyStats struct {
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

type report struct {
	Publishers      int    `json:"publishers"`
	Subscribers     int    `json:"subscribers"`
	TuplesPerSource int    `json:"tuples_per_source"`
	Policy          string `json:"policy"`
	// RatePerPublisher is the paced publish rate in tuples/sec; 0 means
	// an unthrottled open loop, whose latency percentiles measure
	// standing-queue drain rather than steady state — the two
	// configurations are not comparable.
	RatePerPublisher int          `json:"rate_per_publisher"`
	Pacing           string       `json:"pacing"`
	GOMAXPROCS       int          `json:"gomaxprocs"`
	NumCPU           int          `json:"num_cpu"`
	Shards           int          `json:"shards"`
	SubscriberQueue  int          `json:"subscriber_queue"`
	ElapsedSec       float64      `json:"elapsed_sec"`
	TuplesIn         uint64       `json:"tuples_in"`
	TuplesPerSec     float64      `json:"tuples_per_sec"`
	Deliveries       int          `json:"deliveries"`
	DeliveriesPerSec float64      `json:"deliveries_per_sec"`
	SubscriberDrops  uint64       `json:"subscriber_drops"`
	BytesIn          uint64       `json:"bytes_in"`
	BytesOut         uint64       `json:"bytes_out"`
	Latency          latencyStats `json:"delivery_latency"`
	// ScalingMatrix is the open-loop GOMAXPROCS × shards sweep (same
	// publisher/subscriber layout, unthrottled).
	ScalingMatrix []scaleCell `json:"scaling_matrix,omitempty"`
}

// scaleCell is one open-loop cell of the scaling matrix.
type scaleCell struct {
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Shards       int     `json:"shards"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	TuplesIn     uint64  `json:"tuples_in"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	Deliveries   int     `json:"deliveries"`
}

// benchConfig parameterizes one measured serve run.
type benchConfig struct {
	publishers, subscribers, tuples, queue, shards, rate int
	policy                                               server.Policy
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gasf-loadbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gasf-loadbench", flag.ContinueOnError)
	var (
		publishers   = fs.Int("publishers", 8, "publisher (source) sessions")
		subscribers  = fs.Int("subscribers", 32, "subscriber sessions, spread across sources")
		tuples       = fs.Int("tuples", 20000, "tuples per publisher")
		queue        = fs.Int("queue", 1024, "per-subscriber send queue (release cycles)")
		policy       = fs.String("policy", "block", "slow-consumer policy: block or drop")
		shards       = fs.Int("shards", 0, "worker shards (0 = GOMAXPROCS)")
		rate         = fs.Int("rate", 0, "tuples/sec per publisher (0 = unthrottled open loop)")
		procs        = fs.Int("procs", 0, "GOMAXPROCS for the main run (0 = inherit)")
		matrixProcs  = fs.String("matrix-procs", "", "comma-separated GOMAXPROCS values for the open-loop scaling matrix (empty = skip)")
		matrixShards = fs.String("matrix-shards", "", "comma-separated shard counts for the scaling matrix (default: same as -matrix-procs)")
		out          = fs.String("out", "BENCH_serve.json", "report path (- for stdout only)")
		cpuProf      = fs.String("cpuprofile", "", "write a CPU profile of the measured run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *publishers < 1 || *subscribers < 1 || *tuples < 1 {
		return fmt.Errorf("need at least one publisher, subscriber and tuple")
	}
	pol, err := server.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	mp, err := metrics.ParseIntList(*matrixProcs)
	if err != nil {
		return err
	}
	ms, err := metrics.ParseIntList(*matrixShards)
	if err != nil {
		return err
	}
	if len(ms) == 0 {
		ms = mp
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}

	rep, err := measure(benchConfig{
		publishers:  *publishers,
		subscribers: *subscribers,
		tuples:      *tuples,
		queue:       *queue,
		shards:      *shards,
		rate:        *rate,
		policy:      pol,
	})
	if err != nil {
		return err
	}

	// The scaling matrix re-runs the open-loop configuration per
	// (GOMAXPROCS, shards) cell; the paced acceptance numbers above stay
	// untouched by the sweep.
	restore := runtime.GOMAXPROCS(0)
	for _, p := range mp {
		for _, sh := range ms {
			runtime.GOMAXPROCS(p)
			cellRep, err := measure(benchConfig{
				publishers:  *publishers,
				subscribers: *subscribers,
				tuples:      *tuples,
				queue:       *queue,
				shards:      sh,
				rate:        0,
				policy:      pol,
			})
			if err != nil {
				runtime.GOMAXPROCS(restore)
				return fmt.Errorf("matrix cell procs=%d shards=%d: %w", p, sh, err)
			}
			rep.ScalingMatrix = append(rep.ScalingMatrix, scaleCell{
				GOMAXPROCS:   p,
				Shards:       sh,
				ElapsedSec:   cellRep.ElapsedSec,
				TuplesIn:     cellRep.TuplesIn,
				TuplesPerSec: cellRep.TuplesPerSec,
				Deliveries:   cellRep.Deliveries,
			})
			fmt.Fprintf(os.Stderr, "matrix: procs=%d shards=%d %.0f tuples/s\n", p, sh, cellRep.TuplesPerSec)
		}
	}
	runtime.GOMAXPROCS(restore)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", enc)
	if *out != "-" {
		if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
	}
	if rep.TuplesPerSec < 1 {
		return fmt.Errorf("implausible throughput %.1f tuples/sec", rep.TuplesPerSec)
	}
	return nil
}

// measure runs one full serve benchmark: a fresh server, dialed
// sessions, the publish/receive storm, and a graceful shutdown.
func measure(cfg benchConfig) (*report, error) {
	srv, err := server.Start(server.Config{
		Engine:          core.Options{ShardCount: cfg.shards},
		SubscriberQueue: cfg.queue,
		Policy:          cfg.policy,
	})
	if err != nil {
		return nil, err
	}
	addr := srv.Addr().String()
	schema, err := tuple.NewSchema("v")
	if err != nil {
		return nil, err
	}

	// Dial every session up front so the measured window covers steady
	// streaming, not connection setup.
	pubs := make([]*server.Publisher, cfg.publishers)
	for i := range pubs {
		if pubs[i], err = server.DialPublisher(addr, fmt.Sprintf("bench%d", i), schema); err != nil {
			return nil, err
		}
	}
	subs := make([]*server.Subscriber, cfg.subscribers)
	for i := range subs {
		source := fmt.Sprintf("bench%d", i%cfg.publishers)
		app := fmt.Sprintf("app%d", i)
		if subs[i], err = server.DialSubscriber(addr, app, source, "DC1(v, 0.5, 0)"); err != nil {
			return nil, err
		}
	}

	var wg sync.WaitGroup
	latencies := make([][]time.Duration, cfg.subscribers)
	errCh := make(chan error, cfg.publishers+cfg.subscribers)

	start := time.Now()
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub *server.Subscriber) {
			defer wg.Done()
			lats := make([]time.Duration, 0, cfg.tuples)
			var d server.Delivery
			for {
				err := sub.RecvInto(&d)
				if err == server.ErrStreamEnded {
					break
				}
				if err != nil {
					errCh <- fmt.Errorf("subscriber %d: %w", i, err)
					break
				}
				lats = append(lats, d.ReceivedAt.Sub(d.Tuple.TS))
			}
			latencies[i] = lats
		}(i, sub)
	}
	// Paced publishing sends a burst every tick; unthrottled runs flood
	// with backpressure only (their latency tail then measures drain
	// time of the standing queue, not steady state). Each tick's burst
	// is published with batched writes (one syscall and one server-side
	// ring submission per pubBatch frames), so the load generator
	// measures the pipeline, not its own per-tuple syscalls.
	const tick = 5 * time.Millisecond
	const pubBatch = 256
	burst := cfg.tuples // unthrottled: one burst
	if cfg.rate > 0 {
		burst = int(float64(cfg.rate) * tick.Seconds())
		if burst < 1 {
			burst = 1
		}
	}
	for i, pub := range pubs {
		wg.Add(1)
		go func(i int, pub *server.Publisher) {
			defer wg.Done()
			ticker := time.NewTicker(tick)
			defer ticker.Stop()
			vals := make([][]float64, 0, pubBatch)
			backing := make([]float64, pubBatch)
			// Values step by 1 so the DC1(v, 0.5, 0) subscribers treat
			// every tuple as a closed singleton set (pass-all).
			for n := 0; n < cfg.tuples; {
				end := n + burst
				if end > cfg.tuples {
					end = cfg.tuples
				}
				for n < end {
					k := end - n
					if k > pubBatch {
						k = pubBatch
					}
					vals = vals[:0]
					for j := 0; j < k; j++ {
						backing[j] = float64(n + j)
						vals = append(vals, backing[j:j+1])
					}
					if err := pub.PublishNowBatch(vals); err != nil {
						errCh <- fmt.Errorf("publisher %d tuple %d: %w", i, n, err)
						return
					}
					n += k
				}
				if cfg.rate > 0 && n < cfg.tuples {
					<-ticker.C
				}
			}
			if err := pub.Close(); err != nil {
				errCh <- fmt.Errorf("publisher %d close: %w", i, err)
			}
		}(i, pub)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		return nil, err
	}

	c := srv.Counters()
	var all []time.Duration
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	pacing := "open-loop"
	if cfg.rate > 0 {
		pacing = "paced"
	}
	rep := &report{
		Publishers:       cfg.publishers,
		Subscribers:      cfg.subscribers,
		TuplesPerSource:  cfg.tuples,
		Policy:           cfg.policy.String(),
		RatePerPublisher: cfg.rate,
		Pacing:           pacing,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		Shards:           srv.Runtime().Shards(),
		SubscriberQueue:  cfg.queue,
		ElapsedSec:       elapsed.Seconds(),
		TuplesIn:         c.TuplesIn,
		TuplesPerSec:     float64(c.TuplesIn) / elapsed.Seconds(),
		Deliveries:       len(all),
		DeliveriesPerSec: float64(len(all)) / elapsed.Seconds(),
		SubscriberDrops:  c.SubscriberDrops,
		BytesIn:          c.BytesIn,
		BytesOut:         c.BytesOut,
		Latency:          summarize(all),
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return nil, fmt.Errorf("shutdown: %w", err)
	}
	return rep, nil
}

// summarize computes latency percentiles in milliseconds.
func summarize(lats []time.Duration) latencyStats {
	if len(lats) == 0 {
		return latencyStats{}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p float64) float64 {
		i := int(p * float64(len(lats)-1))
		return ms(lats[i])
	}
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	return latencyStats{
		P50Ms:  pct(0.50),
		P90Ms:  pct(0.90),
		P95Ms:  pct(0.95),
		P99Ms:  pct(0.99),
		MeanMs: ms(sum / time.Duration(len(lats))),
		MaxMs:  ms(lats[len(lats)-1]),
	}
}
