// Command gasf-apicheck guards the public API surface of the gasf
// facade: it extracts the exported symbols of the root package, compares
// them to the committed baseline (API.txt), and fails when
//
//   - an exported symbol was removed without a deprecation/removal note
//     naming it in CHANGES.md, or
//   - the baseline is stale (new exported symbols not yet recorded).
//
// Regenerate the baseline with -write after an intentional API change.
// CI runs the check on every push, so the exported surface can only
// move deliberately — the apidiff discipline without external tooling.
//
// Usage:
//
//	gasf-apicheck [-pkg .] [-baseline API.txt] [-changes CHANGES.md] [-write]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	var (
		pkgDir   = flag.String("pkg", ".", "directory of the package to inspect")
		baseline = flag.String("baseline", "API.txt", "committed API baseline")
		changes  = flag.String("changes", "CHANGES.md", "change log checked for deprecation notes")
		write    = flag.Bool("write", false, "regenerate the baseline instead of checking")
	)
	flag.Parse()
	symbols, err := exportedSymbols(*pkgDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gasf-apicheck:", err)
		os.Exit(1)
	}
	if *write {
		if err := os.WriteFile(*baseline, []byte(render(symbols)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "gasf-apicheck:", err)
			os.Exit(1)
		}
		fmt.Printf("gasf-apicheck: wrote %d symbols to %s\n", len(symbols), *baseline)
		return
	}
	base, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gasf-apicheck: %v (run with -write to create the baseline)\n", err)
		os.Exit(1)
	}
	notes, err := os.ReadFile(*changes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gasf-apicheck:", err)
		os.Exit(1)
	}
	problems := check(parseBaseline(string(base)), symbols, string(notes))
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "gasf-apicheck:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("gasf-apicheck: %d exported symbols match %s\n", len(symbols), *baseline)
}

// check compares the baseline against the current surface. Removals are
// allowed only with a note in the change log that names the symbol on a
// line mentioning deprecation or removal; additions require a baseline
// regeneration so the surface stays consciously tracked.
func check(base, current []string, changeLog string) []string {
	cur := make(map[string]bool, len(current))
	for _, s := range current {
		cur[s] = true
	}
	old := make(map[string]bool, len(base))
	for _, s := range base {
		old[s] = true
	}
	var problems []string
	for _, s := range base {
		if !cur[s] {
			if !removalNoted(changeLog, s) {
				problems = append(problems, fmt.Sprintf(
					"exported symbol %q was removed without a deprecation note in CHANGES.md", s))
			}
		}
	}
	var added []string
	for _, s := range current {
		if !old[s] {
			added = append(added, s)
		}
	}
	if len(added) > 0 {
		problems = append(problems, fmt.Sprintf(
			"baseline is stale: %d new exported symbol(s) (%s); run `go run ./cmd/gasf-apicheck -write` and commit API.txt",
			len(added), strings.Join(added, ", ")))
	}
	return problems
}

// removalNoted reports whether the change log mentions the symbol's name
// on a line that speaks of deprecation or removal. The name must appear
// as a whole word — a note for RunSharded must not authorize removing
// Run.
func removalNoted(changeLog, symbol string) bool {
	name := symbol
	if i := strings.LastIndexByte(name, ' '); i >= 0 {
		name = name[i+1:] // "func Run" -> "Run", "method (*X).Y" -> "(*X).Y"
	}
	for _, line := range strings.Split(changeLog, "\n") {
		lower := strings.ToLower(line)
		if !strings.Contains(lower, "deprecat") && !strings.Contains(lower, "removed") && !strings.Contains(lower, "removal") {
			continue
		}
		if containsWord(line, name) {
			return true
		}
	}
	return false
}

// containsWord reports whether name occurs in line bounded by
// non-identifier characters on both sides.
func containsWord(line, name string) bool {
	isIdent := func(r byte) bool {
		return r == '_' || ('0' <= r && r <= '9') || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z')
	}
	for from := 0; ; {
		i := strings.Index(line[from:], name)
		if i < 0 {
			return false
		}
		i += from
		before := i == 0 || !isIdent(line[i-1])
		end := i + len(name)
		after := end == len(line) || !isIdent(line[end])
		if before && after {
			return true
		}
		from = i + 1
	}
}

// exportedSymbols lists the exported top-level declarations of the
// package in dir (excluding tests): funcs, types, consts, vars, and
// methods on exported receivers.
func exportedSymbols(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var symbols []string
	add := func(kind, name string) {
		if ast.IsExported(name) {
			symbols = append(symbols, kind+" "+name)
		}
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv == nil {
						add("func", d.Name.Name)
						continue
					}
					recv, exported := receiverName(d.Recv)
					if exported && ast.IsExported(d.Name.Name) {
						symbols = append(symbols, "method "+recv+"."+d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							add("type", sp.Name.Name)
						case *ast.ValueSpec:
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							for _, n := range sp.Names {
								add(kind, n.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(symbols)
	return dedupe(symbols), nil
}

// receiverName renders a method receiver type ("(*Embedded)" or
// "(Spec)") and whether it is exported.
func receiverName(fields *ast.FieldList) (string, bool) {
	if len(fields.List) != 1 {
		return "", false
	}
	t := fields.List[0].Type
	star := ""
	if se, ok := t.(*ast.StarExpr); ok {
		star = "*"
		t = se.X
	}
	// Generic receivers (IndexExpr etc.) unwrap to their base name.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", false
	}
	return "(" + star + id.Name + ")", ast.IsExported(id.Name)
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || sorted[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}

func render(symbols []string) string {
	var b strings.Builder
	b.WriteString("# Exported API surface of package gasf.\n")
	b.WriteString("# Maintained by cmd/gasf-apicheck; regenerate with:\n")
	b.WriteString("#   go run ./cmd/gasf-apicheck -write\n")
	for _, s := range symbols {
		b.WriteString(s)
		b.WriteByte('\n')
	}
	return b.String()
}

// parseBaseline reads the committed baseline, skipping comments.
func parseBaseline(text string) []string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out
}
