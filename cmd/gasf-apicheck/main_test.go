package main

import (
	"strings"
	"testing"
)

func TestCheckAdditionsAndRemovals(t *testing.T) {
	base := []string{"func Old", "func Stays", "method (*Client).Gone"}
	current := []string{"func Stays", "func New"}

	// Removal without a note and a stale baseline: two problems.
	problems := check(base, current, "- PR 9: something unrelated\n")
	if len(problems) != 3 {
		t.Fatalf("problems = %v, want 3 (two unnoted removals + stale baseline)", problems)
	}

	// A deprecation note naming the symbols absolves the removals.
	log := "- PR 9: deprecated and removed Old and (*Client).Gone in favor of Broker\n"
	problems = check(base, current, log)
	if len(problems) != 1 || !strings.Contains(problems[0], "baseline is stale") {
		t.Fatalf("problems = %v, want only the stale-baseline report", problems)
	}

	// Matching surfaces are clean.
	if problems := check(current, current, ""); len(problems) != 0 {
		t.Fatalf("identical surfaces reported %v", problems)
	}
}

func TestRemovalNotedRequiresDeprecationLanguage(t *testing.T) {
	if removalNoted("- PR 9: renamed Run internals\n", "func Run") {
		t.Error("note without deprecation language should not absolve a removal")
	}
	if !removalNoted("- PR 9: Run is deprecated; use Broker\n", "func Run") {
		t.Error("deprecation note naming the symbol should absolve it")
	}
}

func TestExportedSymbolsSelf(t *testing.T) {
	// The tool can read its own package; only main-package symbols are
	// unexported, so the surface is empty.
	symbols, err := exportedSymbols(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(symbols) != 0 {
		t.Errorf("command package should export nothing, got %v", symbols)
	}
}

func TestExportedSymbolsFacade(t *testing.T) {
	symbols, err := exportedSymbols("../..")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"func Run", "func NewEmbedded", "func Dial", "type Broker", "method (*Embedded).Results"}
	have := make(map[string]bool, len(symbols))
	for _, s := range symbols {
		have[s] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("facade surface missing %q", w)
		}
	}
}

func TestContainsWordBoundaries(t *testing.T) {
	if containsWord("deprecated RunSharded wrapper", "Run") {
		t.Error("Run must not match inside RunSharded")
	}
	if !containsWord("deprecated Run; use Broker", "Run") {
		t.Error("Run should match as a whole word")
	}
	if !containsWord("removed (*Client).Gone", "(*Client).Gone") {
		t.Error("method names with punctuation should match")
	}
	if !containsWord("RunSharded and Run deprecated", "Run") {
		t.Error("later whole-word occurrence should match after a prefix miss")
	}
}
