// Command gasf-server runs the networked group-aware stream filtering
// service: publishers stream wire-encoded tuples over TCP, applications
// subscribe with quality specifications, and every source runs a
// group-aware engine on the sharded runtime with live membership.
//
// Usage:
//
//	gasf-server -addr :7070 -metrics-addr :9090 \
//	            -alg RG -policy drop -queue 256 \
//	            -heartbeat 2s -source-timeout 30s \
//	            -data-dir /var/lib/gasf -fsync interval \
//	            -log-format json -telemetry-sample 64
//
// With -data-dir set the server is durable: every delivered transmission
// is appended to a per-source segment log before fan-out, deliveries
// carry log offsets, and subscribers may resume from a checkpointed
// offset. Startup recovers the log, truncating any torn tail left by a
// crash.
//
// With -role core/edge the server joins a federated deployment
// (DESIGN.md §15): cores own sources placed by consistent hashing over
// the -peers ring, edges hold subscriber sessions and open at most one
// upstream relay leg per (core, group), fanning local subscribers out
// from it. Clients use gasf.DialFederated with the same peer notation.
//
// The metrics listener serves the full observability surface:
// GET /metrics (strict Prometheus text exposition: session and shard
// counters, stage-duration histograms, delivery-latency summaries),
// GET /healthz (liveness), GET /readyz (readiness; 503 once a drain has
// begun), GET /debug/gasf (live JSON introspection of sessions, queue
// depths, resume offsets and latency quantiles) and the standard
// /debug/pprof handlers. Logs are structured (log/slog); -log-format
// selects text or json lines on stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gasf/internal/core"
	"gasf/internal/federate"
	"gasf/internal/seglog"
	"gasf/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gasf-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gasf-server", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":7070", "TCP listen address for sources and subscribers")
		metricsAddr = fs.String("metrics-addr", "", "HTTP listen address for /metrics, /healthz, /readyz and /debug (empty disables)")
		alg         = fs.String("alg", "RG", "group decision algorithm: RG or PS")
		cuts        = fs.Bool("cuts", false, "enable timely cuts")
		maxDelay    = fs.Duration("maxdelay", 0, "group time constraint for -cuts")
		shards      = fs.Int("shards", 0, "worker shards (0 = GOMAXPROCS)")
		shardQueue  = fs.Int("shard-queue", 0, "per-shard input queue depth (0 = default)")
		flushBatch  = fs.Int("flushbatch", 0, "released-transmission flush batch (0 = default)")
		queue       = fs.Int("queue", 256, "default per-subscriber send queue, in frames")
		policy      = fs.String("policy", "block", "slow-consumer policy: block, drop or degrade")
		heartbeat   = fs.Duration("heartbeat", 2*time.Second, "subscriber heartbeat / gap-scan interval")
		srcTimeout  = fs.Duration("source-timeout", 30*time.Second, "expire sources silent for this long (<0 disables)")
		scanEvery   = fs.Duration("scan-interval", 0, "flow-gap wheel granularity; expiry detected at most ~2 intervals late (0 = source-timeout/8, clamped to [10ms,1s])")
		gapWebhook  = fs.String("gap-webhook", "", "URL to POST a JSON deadman notification to when flow-gap expiry finishes a silent source (empty disables)")
		evictDrops  = fs.Int("evict-after-drops", 0, "evict a drop-policy subscriber after this many dropped deliveries (0 disables)")
		drainGrace  = fs.Duration("drain-grace", time.Second, "how long shutdown keeps draining connected publishers")
		quiet       = fs.Bool("quiet", false, "suppress per-session log lines (warnings and errors still print)")
		logFormat   = fs.String("log-format", "text", "structured log format on stderr: text or json")
		telSample   = fs.Int("telemetry-sample", 0, "stage-timing sampling period, rounded up to a power of two (0 = default, negative disables telemetry)")

		role  = fs.String("role", "single", "federation role: single, core or edge")
		self  = fs.String("self", "", "this node's name in the -peers core list (required for core/edge roles)")
		peers = fs.String("peers", "", `core placement ring as "name=addr,name=addr" (required for core/edge roles)`)

		dataDir       = fs.String("data-dir", "", "durable log directory (empty disables durability)")
		segmentBytes  = fs.Int64("segment-bytes", 0, "log segment rotation size in bytes (0 = 64MiB)")
		fsync         = fs.String("fsync", "interval", "log fsync policy: interval, never or always")
		fsyncInterval = fs.Duration("fsync-interval", 0, "background sync interval for -fsync interval (0 = 200ms)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := core.Options{Cuts: *cuts, MaxDelay: *maxDelay,
		ShardCount: *shards, QueueDepth: *shardQueue, FlushBatch: *flushBatch}
	switch *alg {
	case "RG", "rg":
		opts.Algorithm = core.RG
	case "PS", "ps":
		opts.Algorithm = core.PS
	default:
		return fmt.Errorf("unknown algorithm %q (want RG or PS)", *alg)
	}
	pol, err := server.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	fsyncPol, err := seglog.ParsePolicy(*fsync)
	if err != nil {
		return err
	}
	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	hopts := &slog.HandlerOptions{Level: level}
	var lg *slog.Logger
	switch *logFormat {
	case "text":
		lg = slog.New(slog.NewTextHandler(os.Stderr, hopts))
	case "json":
		lg = slog.New(slog.NewJSONHandler(os.Stderr, hopts))
	default:
		return fmt.Errorf("unknown log format %q (want text or json)", *logFormat)
	}

	var onGap func(source string, silentFor time.Duration)
	if *gapWebhook != "" {
		onGap = gapNotifier(*gapWebhook, lg)
	}

	fedRole, err := federate.ParseRole(*role)
	if err != nil {
		return err
	}
	var fedPeers []federate.Node
	if *peers != "" {
		if fedPeers, err = federate.ParsePeers(*peers); err != nil {
			return err
		}
	}

	srv, err := server.Start(server.Config{
		Addr:                 *addr,
		Federation: server.FederationConfig{
			Role:  fedRole,
			Self:  *self,
			Peers: fedPeers,
		},
		Engine:               opts,
		SubscriberQueue:      *queue,
		Policy:               pol,
		EvictAfterDrops:      *evictDrops,
		OnSourceGap:          onGap,
		HeartbeatInterval:    *heartbeat,
		SourceTimeout:        *srcTimeout,
		ScanInterval:         *scanEvery,
		DrainGrace:           *drainGrace,
		Logger:               lg,
		TelemetrySampleEvery: *telSample,
		DataDir:              *dataDir,
		Seglog: seglog.Options{
			SegmentBytes: *segmentBytes,
			Fsync:        fsyncPol,
			Interval:     *fsyncInterval,
		},
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		lg.Info("durable log open", "dir", *dataDir, "fsync", fsyncPol.String())
	}
	if fedRole != federate.RoleSingle {
		lg.Info("federation enabled", "role", fedRole.String(), "self", *self, "cores", *peers)
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		metricsSrv = &http.Server{Addr: *metricsAddr, Handler: srv.MetricsHandler()}
		go func() {
			if err := metricsSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				lg.Error("metrics listener failed", "err", err)
			}
		}()
		lg.Info("metrics listening", "url", fmt.Sprintf("http://%s/metrics", *metricsAddr))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	lg.Info("signal received, draining")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if metricsSrv != nil {
		defer metricsSrv.Shutdown(ctx)
	}
	return srv.Shutdown(ctx)
}

// gapNotifier returns an OnSourceGap hook POSTing a JSON deadman
// notification to url, with bounded retries — the operator's pager for
// a sensor that stopped reporting. The server invokes the hook off its
// expiry path, so a slow webhook never delays gap detection.
func gapNotifier(url string, lg *slog.Logger) func(source string, silentFor time.Duration) {
	client := &http.Client{Timeout: 5 * time.Second}
	return func(source string, silentFor time.Duration) {
		body := fmt.Sprintf(`{"event":"source_gap","source":%q,"silent_for_ms":%d}`,
			source, silentFor.Milliseconds())
		var err error
		for attempt, wait := 0, 250*time.Millisecond; attempt < 3; attempt, wait = attempt+1, wait*4 {
			if attempt > 0 {
				time.Sleep(wait)
			}
			var resp *http.Response
			resp, err = client.Post(url, "application/json", strings.NewReader(body))
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode < 300 {
				return
			}
			err = fmt.Errorf("webhook status %s", resp.Status)
		}
		lg.Warn("gap webhook delivery failed", "source", source, "url", url, "err", err)
	}
}
