package gasf_test

import (
	"fmt"
	"testing"

	"gasf"
)

// TestRunShardedMatchesRun checks the public sharded entry point: every
// source's result must equal a sequential Run of the same group.
func TestRunShardedMatchesRun(t *testing.T) {
	sr, err := gasf.NAMOS(gasf.TraceConfig{N: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	mkGroup := func() []gasf.Filter {
		a, _ := gasf.NewDCFilter("A", "fluoro", 0.10, 0.05)
		b, _ := gasf.NewDCFilter("B", "fluoro", 0.22, 0.10)
		return []gasf.Filter{a, b}
	}
	const sources = 9
	groups := make(map[string][]gasf.Filter, sources)
	series := make(map[string]*gasf.Series, sources)
	for i := 0; i < sources; i++ {
		name := fmt.Sprintf("buoy%d", i)
		groups[name] = mkGroup()
		series[name] = sr
	}
	opts := gasf.Options{Algorithm: gasf.RG, ShardCount: 3, QueueDepth: 8, FlushBatch: 4}
	results, snaps, err := gasf.RunSharded(groups, series, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gasf.Run(mkGroup(), sr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != sources {
		t.Fatalf("got %d results, want %d", len(results), sources)
	}
	for name, res := range results {
		if res.Stats.DistinctOutputs != want.Stats.DistinctOutputs ||
			res.Stats.Transmissions != want.Stats.Transmissions {
			t.Errorf("%s: (distinct, transmissions) = (%d, %d), want (%d, %d)",
				name, res.Stats.DistinctOutputs, res.Stats.Transmissions,
				want.Stats.DistinctOutputs, want.Stats.Transmissions)
		}
	}
	if len(snaps) != 3 {
		t.Fatalf("got %d shard snapshots, want 3", len(snaps))
	}
	var processed uint64
	for _, s := range snaps {
		processed += s.Processed
	}
	if processed != uint64(sources*sr.Len()) {
		t.Errorf("shards processed %d tuples, want %d", processed, sources*sr.Len())
	}

	if _, _, err := gasf.RunSharded(nil, nil, opts); err == nil {
		t.Error("empty groups should fail")
	}
	delete(series, "buoy0")
	if _, _, err := gasf.RunSharded(groups, series, opts); err == nil {
		t.Error("missing series should fail")
	}
}
