package gasf

import (
	"context"
	"fmt"

	"gasf/internal/broker"
)

// Embedded is the in-process Broker implementation: sources and
// subscriptions run directly on the sharded group-aware runtime, with no
// sockets in the loop. It is the deployment for single-process services,
// tests, and the batch Run* wrappers; it exposes the engine results and
// shard metrics a networked client cannot see.
type Embedded struct {
	b *broker.Broker
}

var _ Broker = (*Embedded)(nil)

// NewEmbedded starts an embedded broker configured by functional
// options (WithShards, WithQueueDepth, WithSlowPolicy, WithAlgorithm,
// ...). The zero option set runs default RG engines with blocking
// slow-consumer handling.
func NewEmbedded(opts ...Option) (*Embedded, error) {
	cfg, err := resolveBrokerConfig(false, opts)
	if err != nil {
		return nil, err
	}
	pol := broker.Block
	switch cfg.policy {
	case PolicyDrop:
		pol = broker.Drop
	case PolicyDegrade:
		pol = broker.Degrade
	}
	b, err := broker.New(broker.Config{
		Engine:               cfg.engine,
		SubscriberQueue:      cfg.subQueue,
		MaxSubscriberQueue:   cfg.maxSubQueue,
		Policy:               pol,
		EvictAfterDrops:      cfg.evictAfterDrops,
		DataDir:              cfg.dataDir,
		Seglog:               cfg.seglog,
		TelemetrySampleEvery: cfg.telemetry,
		SourceTimeout:        cfg.srcTimeout,
		ScanInterval:         cfg.scanEvery,
	})
	if err != nil {
		return nil, err
	}
	return &Embedded{b: b}, nil
}

// OpenSource implements Broker.
func (e *Embedded) OpenSource(ctx context.Context, name string, schema *Schema) (Source, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.b.OpenSource(name, schema)
}

// Subscribe implements Broker.
func (e *Embedded) Subscribe(ctx context.Context, app, source, spec string, opts ...SubOption) (Subscription, error) {
	sp, err := specFor(spec)
	if err != nil {
		return nil, err
	}
	sc, err := resolveSubConfig(opts)
	if err != nil {
		return nil, err
	}
	if sc.recvBuffer > 0 {
		return nil, fmt.Errorf("gasf: WithRecvBuffer only applies to a dialed broker (an embedded subscription has no socket)")
	}
	sub, err := e.b.Subscribe(ctx, app, source, sp, broker.SubOptions{
		Queue:      sc.queue,
		Resume:     sc.resume,
		ResumeFrom: sc.resumeFrom,
	})
	if err != nil {
		return nil, err
	}
	return &embeddedSub{sub: sub}, nil
}

// Close implements Broker: open sources are finished, their tails flush
// through the remaining subscribers, and the shard runtime drains. ctx
// bounds the graceful path; on expiry the runtime is aborted.
func (e *Embedded) Close(ctx context.Context) error { return e.b.Close(ctx) }

// Results returns the per-source engine results accumulated so far —
// settled once the sources finished (or after Close). The embedded
// broker retains finished sources so batch runs can read them.
func (e *Embedded) Results() map[string]*Result { return e.b.Results() }

// Metrics returns the per-shard runtime counters.
func (e *Embedded) Metrics() []ShardSnapshot { return e.b.Metrics() }

// Telemetry returns the pipeline telemetry snapshot: frugal-estimated
// delivery-latency quantiles and the sampled stage-duration histograms.
// Zero when telemetry was disabled with WithTelemetry(-1). The embedded
// broker observes delivery latency at the subscriber queue hand-off
// (there is no egress socket in-process).
func (e *Embedded) Telemetry() TelemetrySnapshot { return e.b.Telemetry() }

// embeddedSub adapts the internal subscription to the unified interface
// (pointer deliveries, the shared end-of-stream sentinel).
type embeddedSub struct {
	sub *broker.Sub
}

var _ Subscription = (*embeddedSub)(nil)

func (s *embeddedSub) App() string     { return s.sub.App() }
func (s *embeddedSub) Source() string  { return s.sub.Source() }
func (s *embeddedSub) Schema() *Schema { return s.sub.Schema() }
func (s *embeddedSub) Spec() Spec      { return s.sub.Spec() }
func (s *embeddedSub) QoS() float64    { return s.sub.QoS() }

func (s *embeddedSub) Recv(ctx context.Context) (*Delivery, error) {
	d, err := s.sub.Recv(ctx)
	if err != nil {
		return nil, mapStreamEnd(err)
	}
	return &d, nil
}

func (s *embeddedSub) RecvInto(ctx context.Context, d *Delivery) error {
	return mapStreamEnd(s.sub.RecvInto(ctx, d))
}

func (s *embeddedSub) Close(ctx context.Context) error { return s.sub.Close(ctx) }

// queueDepth reports the delivery queue depth in effect (tests).
func (s *embeddedSub) queueDepth() int { return s.sub.QueueDepth() }

// ensure the concrete source satisfies the interface.
var _ Source = (*broker.Source)(nil)
