// Multi-modal sensing: co-located cheap sensors and an expensive imager
// (§5.5.2, Fig 5.5).
//
// A surveillance site bundles a low-cost vibration sensor with a
// high-resolution camera. Three detection applications monitor the
// *smoothed vibration envelope* — a domain-specific signal plugged in
// through the framework's extension hook (§5.3) — at different
// granularities. Every tuple a filter selects triggers one camera snapshot
// that must cross the bandwidth-starved network, so the union of the
// filters' outputs is exactly the image bill: the "index" of Fig 5.5.
// Group-aware filtering shrinks that index without costing any
// application its detection granularity.
//
//	go run ./examples/multimodal
package main

import (
	"fmt"
	"log"
	"math"

	"gasf"
)

// imageBytes is the cost of shipping one camera frame.
const imageBytes = 48 * 1024

// envelopeSignal derives a smoothed vibration envelope: an exponential
// moving average of the absolute seismic reading. It implements
// gasf.Signal, the candidate-computation extension point.
type envelopeSignal struct {
	alpha float64
	ema   float64
	has   bool
	idx   int
	bound bool
}

func (s *envelopeSignal) Value(t *gasf.Tuple) (float64, error) {
	if !s.bound {
		i, err := t.Schema().Index("seis")
		if err != nil {
			return 0, err
		}
		s.idx, s.bound = i, true
	}
	v := math.Abs(t.ValueAt(s.idx))
	if !s.has {
		s.ema, s.has = v, true
	} else {
		s.ema = (1-s.alpha)*s.ema + s.alpha*v
	}
	return s.ema, nil
}

func (s *envelopeSignal) Reset()         { s.has, s.bound = false, false }
func (s *envelopeSignal) String() string { return "envelope(seis)" }

// envelopeOver replays the envelope over a series to measure its
// srcStatistics, the way §4.3 derives filter deltas.
func envelopeOver(series *gasf.Series) (float64, error) {
	sig := &envelopeSignal{alpha: 0.05}
	prev, sum := 0.0, 0.0
	for i := 0; i < series.Len(); i++ {
		v, err := sig.Value(series.At(i))
		if err != nil {
			return 0, err
		}
		if i > 0 {
			sum += math.Abs(v - prev)
		}
		prev = v
	}
	return sum / float64(series.Len()-1), nil
}

func buildFilters(stat float64) ([]gasf.Filter, error) {
	var fs []gasf.Filter
	for _, spec := range []struct {
		id   string
		mult float64
	}{
		{"perimeter-alarm", 1.5},
		{"activity-logger", 2.5},
		{"daily-summary", 4.0},
	} {
		f, err := gasf.NewSignalFilter(spec.id, &envelopeSignal{alpha: 0.05},
			spec.mult*stat, 0.5*spec.mult*stat)
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	return fs, nil
}

func main() {
	// The cheap-sensor stream: background oscillation with event swells.
	series, err := gasf.SeismicTrace(gasf.TraceConfig{N: 8000, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	stat, err := envelopeOver(series)
	if err != nil {
		log.Fatal(err)
	}

	filters, err := buildFilters(stat)
	if err != nil {
		log.Fatal(err)
	}
	ga, err := gasf.Run(filters, series, gasf.Options{Algorithm: gasf.RG})
	if err != nil {
		log.Fatal(err)
	}
	siFilters, err := buildFilters(stat)
	if err != nil {
		log.Fatal(err)
	}
	si, err := gasf.RunSelfInterested(siFilters, series, gasf.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Every distinct index tuple triggers one snapshot.
	gaImages, siImages := ga.Stats.DistinctOutputs, si.Stats.DistinctOutputs
	fmt.Printf("vibration stream: %d tuples; %d detection applications on envelope(seis)\n",
		series.Len(), len(filters))
	fmt.Printf("index size / images: group-aware %4d | self-interested %4d\n", gaImages, siImages)
	gaMB := float64(gaImages*imageBytes) / (1 << 20)
	siMB := float64(siImages*imageBytes) / (1 << 20)
	fmt.Printf("image bytes:         group-aware %.2f MiB | self-interested %.2f MiB\n", gaMB, siMB)
	if siMB > 0 {
		fmt.Printf("\nthe shared index saved %.0f%% of the image bandwidth —\n", 100*(1-gaMB/siMB))
		fmt.Println("and battery, storage and medium time on the sensing site.")
	}
	for _, f := range filters {
		fmt.Printf("  %-16s still received %3d detections\n", f.ID(), ga.Stats.PerFilter[f.ID()])
	}
}
