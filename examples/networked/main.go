// Networked: the unified Broker API over a real TCP loopback.
//
// An embedded gasf server is started on an ephemeral port; gasf.Dial
// returns a Broker whose sessions speak the framed wire protocol. A
// publisher streams a lake-buoy trace as the source "buoy", while two
// applications subscribe with different quality specifications and print
// what the group-aware filters deliver. A third application joins
// mid-stream at a Sync barrier — the live group re-derivation of §4.3 —
// and a subscriber leaves again (with an acknowledged departure) before
// the stream ends.
//
// Replace gasf.Dial(addr) with gasf.NewEmbedded() and the same program
// runs without a server process — see examples/embedded.
//
//	go run ./examples/networked
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"gasf"
)

func main() {
	ctx := context.Background()
	srv, err := gasf.StartServer(gasf.ServerConfig{Policy: gasf.PolicyDrop})
	if err != nil {
		log.Fatal(err)
	}
	addr := srv.Addr().String()
	fmt.Println("server listening on", addr)
	b, err := gasf.Dial(addr, gasf.WithDialTimeout(5*time.Second))
	if err != nil {
		log.Fatal(err)
	}

	series, err := gasf.NAMOS(gasf.TraceConfig{N: 400, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	src, err := b.OpenSource(ctx, "buoy", series.Schema())
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	// leaveAfter > 0 makes the application unsubscribe mid-stream (the
	// server removes its filter from the live group and acknowledges the
	// departure).
	subscribe := func(app, spec string, leaveAfter int) {
		sub, err := b.Subscribe(ctx, app, "buoy", spec, gasf.WithQueueDepth(512))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s subscribed with %s\n", app, sub.Spec())
		wg.Add(1)
		go func() {
			defer wg.Done()
			count := 0
			for {
				d, err := sub.Recv(ctx)
				if err != nil {
					if !errors.Is(err, gasf.ErrStreamEnded) {
						log.Printf("%s: %v", app, err)
					}
					fmt.Printf("%s: stream ended after %d deliveries\n", app, count)
					return
				}
				count++
				if count <= 3 {
					v, _ := d.Tuple.Value("fluoro")
					fmt.Printf("%s: tuple %d fluoro=%.3f (shared by %v)\n",
						app, d.Tuple.Seq, v, d.Destinations)
				}
				if leaveAfter > 0 && count == leaveAfter {
					if err := sub.Close(ctx); err != nil {
						log.Printf("%s: leave: %v", app, err)
					}
					fmt.Printf("%s: unsubscribed after %d deliveries (departure acknowledged)\n", app, count)
					return
				}
			}
		}()
	}

	subscribe("coarse", "DC1(fluoro, 0.5, 0.25)", 10)
	subscribe("fine", "DC1(fluoro, 0.2, 0.1)", 0)

	for i := 0; i < series.Len(); i++ {
		if i == series.Len()/2 {
			// A third application joins mid-stream. The Sync barrier pins
			// the tuple boundary: everything published above is processed
			// before the join re-derives the group.
			if err := src.Sync(ctx); err != nil {
				log.Fatal(err)
			}
			subscribe("trend", "DC2(fluoro, 0.4, 0.2)", 0)
		}
		if err := src.Publish(ctx, series.At(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := src.Finish(ctx); err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Close(sctx); err != nil {
		log.Fatal(err)
	}
	if err := srv.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained")
}
