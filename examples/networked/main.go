// Networked: the client/server API over a real TCP loopback.
//
// An embedded gasf server is started on an ephemeral port; a publisher
// streams a lake-buoy trace as the source "buoy", while two applications
// subscribe over TCP with different quality specifications and print
// what the group-aware filters deliver. A third application joins
// mid-stream — the live group re-derivation of §4.3 — and a subscriber
// leaves again before the stream ends.
//
//	go run ./examples/networked
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"gasf"
)

func main() {
	srv, err := gasf.StartServer(gasf.ServerConfig{Policy: gasf.PolicyDrop})
	if err != nil {
		log.Fatal(err)
	}
	addr := srv.Addr().String()
	fmt.Println("server listening on", addr)
	client := gasf.NewClient(addr)

	series, err := gasf.NAMOS(gasf.TraceConfig{N: 400, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	pub, err := client.Publish("buoy", series.Schema())
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	// leaveAfter > 0 makes the application unsubscribe mid-stream (the
	// server removes its filter from the live group).
	subscribe := func(app, spec string, leaveAfter int) {
		sub, err := client.Subscribe(app, "buoy", spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s subscribed with %s\n", app, spec)
		wg.Add(1)
		go func() {
			defer wg.Done()
			count := 0
			for {
				d, err := sub.Recv()
				if err != nil {
					fmt.Printf("%s: stream ended after %d deliveries (%v)\n", app, count, err)
					return
				}
				count++
				if count <= 3 {
					v, _ := d.Tuple.Value("fluoro")
					fmt.Printf("%s: tuple %d fluoro=%.3f (shared by %v)\n",
						app, d.Tuple.Seq, v, d.Destinations)
				}
				if leaveAfter > 0 && count == leaveAfter {
					sub.Close()
					fmt.Printf("%s: unsubscribed after %d deliveries\n", app, count)
					return
				}
			}
		}()
	}

	subscribe("coarse", "DC1(fluoro, 0.5, 0.25)", 10)
	subscribe("fine", "DC1(fluoro, 0.2, 0.1)", 0)

	for i := 0; i < series.Len(); i++ {
		if i == series.Len()/2 {
			// A third application joins mid-stream: the server re-derives
			// the group at a tuple boundary without disturbing the others.
			subscribe("trend", "DC2(fluoro, 0.4, 0.2)", 0)
		}
		if err := pub.Publish(series.At(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := pub.Close(); err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained")
}
