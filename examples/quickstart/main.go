// Quickstart: the paper's worked example (Figs 2.5, 2.8, 2.11) on the
// public API.
//
// Three applications subscribe to one temperature stream with
// delta-compression filters A=(slack 10, delta 50), B=(5, 40), C=(25, 80).
// Individually they would pull 6 distinct tuples from the ten-tuple
// stream; coordinated, 3 suffice.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gasf"
)

func main() {
	series := gasf.PaperExample()
	fmt.Println("input stream (temperature):")
	for i := 0; i < series.Len(); i++ {
		fmt.Printf("  slot %2d: %g\n", i+1, series.At(i).ValueAt(0))
	}

	build := func() []gasf.Filter {
		a, err := gasf.NewDCFilter("A", "temperature", 50, 10)
		if err != nil {
			log.Fatal(err)
		}
		b, err := gasf.NewDCFilter("B", "temperature", 40, 5)
		if err != nil {
			log.Fatal(err)
		}
		c, err := gasf.NewDCFilter("C", "temperature", 80, 25)
		if err != nil {
			log.Fatal(err)
		}
		return []gasf.Filter{a, b, c}
	}

	// Baseline: every filter fends for itself.
	si, err := gasf.RunSelfInterested(build(), series, gasf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nself-interested filtering: %d distinct tuples multicast\n", si.Stats.DistinctOutputs)
	for _, tr := range si.Transmissions {
		fmt.Printf("  %4g -> %v\n", tr.Tuple.ValueAt(0), tr.Destinations)
	}

	// Region-based greedy (Fig 2.8).
	rg, err := gasf.Run(build(), series, gasf.Options{Algorithm: gasf.RG})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregion-based greedy (RG): %d distinct tuples\n", rg.Stats.DistinctOutputs)
	for _, tr := range rg.Transmissions {
		fmt.Printf("  %4g -> %v\n", tr.Tuple.ValueAt(0), tr.Destinations)
	}

	// Per-candidate-set greedy with immediate release (Fig 2.11).
	ps, err := gasf.Run(build(), series, gasf.Options{Algorithm: gasf.PS, Strategy: gasf.PerCandidateSet})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nper-candidate-set greedy (PS): %d distinct tuples, released as decided\n",
		ps.Stats.DistinctOutputs)
	for _, tr := range ps.Transmissions {
		fmt.Printf("  %4g -> %v\n", tr.Tuple.ValueAt(0), tr.Destinations)
	}

	saved := 1 - float64(rg.Stats.DistinctOutputs)/float64(si.Stats.DistinctOutputs)
	fmt.Printf("\ngroup awareness saved %.0f%% of the multicast bandwidth while every\n", saved*100)
	fmt.Println("application still received data meeting its (slack, delta) requirement.")
}
