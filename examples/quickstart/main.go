// Quickstart: the paper's worked example (Figs 2.5, 2.8, 2.11) on the
// unified Broker API.
//
// Three applications subscribe to one temperature stream with
// delta-compression quality specs A=(delta 50, slack 10), B=(40, 5),
// C=(80, 25). Individually they would pull 6 distinct tuples from the
// ten-tuple stream; coordinated by the group-aware engine behind an
// embedded broker, 3 suffice.
//
// The same program runs against a networked gasf-server by replacing
// gasf.NewEmbedded() with gasf.Dial("host:port") — one Broker interface,
// two transports.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"gasf"
)

func main() {
	ctx := context.Background()
	series := gasf.PaperExample()
	fmt.Println("input stream (temperature):")
	for i := 0; i < series.Len(); i++ {
		fmt.Printf("  slot %2d: %g\n", i+1, series.At(i).ValueAt(0))
	}

	// The embedded broker runs the group-aware engine in-process: sources
	// and subscriptions are live sessions, no server required.
	b, err := gasf.NewEmbedded(gasf.WithAlgorithm(gasf.RG))
	if err != nil {
		log.Fatal(err)
	}
	src, err := b.OpenSource(ctx, "sensor", series.Schema())
	if err != nil {
		log.Fatal(err)
	}

	specs := map[string]string{
		"A": "DC1(temperature, 50, 10)",
		"B": "DC1(temperature, 40, 5)",
		"C": "DC1(temperature, 80, 25)",
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		received = make(map[string][]float64)
		distinct = make(map[int]bool)
	)
	for app, spec := range specs {
		sub, err := b.Subscribe(ctx, app, "sensor", spec)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(app string, sub gasf.Subscription) {
			defer wg.Done()
			for {
				d, err := sub.Recv(ctx)
				if errors.Is(err, gasf.ErrStreamEnded) {
					return
				}
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				received[app] = append(received[app], d.Tuple.ValueAt(0))
				distinct[d.Tuple.Seq] = true
				mu.Unlock()
			}
		}(app, sub)
	}

	if err := src.PublishBatch(ctx, series.Tuples()); err != nil {
		log.Fatal(err)
	}
	if err := src.Finish(ctx); err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	if err := b.Close(ctx); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ngroup-aware filtering (RG): %d distinct tuples multicast\n", len(distinct))
	for _, app := range []string{"A", "B", "C"} {
		fmt.Printf("  %s (%s) received %v\n", app, specs[app], received[app])
	}

	// Baseline: every filter fends for itself (the batch API remains for
	// finite comparisons like this one).
	var filters []gasf.Filter
	for _, app := range []string{"A", "B", "C"} {
		sp, err := gasf.ParseSpec(specs[app])
		if err != nil {
			log.Fatal(err)
		}
		f, err := sp.Build(app)
		if err != nil {
			log.Fatal(err)
		}
		filters = append(filters, f)
	}
	si, err := gasf.RunSelfInterested(filters, series, gasf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nself-interested baseline: %d distinct tuples\n", si.Stats.DistinctOutputs)

	saved := 1 - float64(len(distinct))/float64(si.Stats.DistinctOutputs)
	fmt.Printf("\ngroup awareness saved %.0f%% of the multicast bandwidth while every\n", saved*100)
	fmt.Println("application still received data meeting its (slack, delta) requirement.")
}
