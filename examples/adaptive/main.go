// Adaptive quality degradation under a bandwidth budget (§3.1).
//
// A location-tracking scenario from the paper's motivation: applications
// normally want fine-grained updates, but "in times of severe network
// conditions ... [are] willing to degrade requirements for location
// updates to a slower rate". Here a vibration source goes through a calm
// phase and then an eruption of activity; a fixed-granularity group would
// blow through the mesh's bandwidth budget during the eruption. The
// degradation controller watches each control window's output/input ratio
// and scales every filter's granularity up just enough to stay within
// budget, then restores it when the activity subsides.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"strings"

	"gasf"
)

func buildFilters(stat float64) ([]gasf.Filter, error) {
	var fs []gasf.Filter
	for _, spec := range []struct {
		id   string
		mult float64
	}{
		{"tracker-fine", 2.0},
		{"tracker-coarse", 3.5},
	} {
		f, err := gasf.NewDCFilter(spec.id, "seis", spec.mult*stat, 0.5*spec.mult*stat)
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	return fs, nil
}

func main() {
	series, err := gasf.SeismicTrace(gasf.TraceConfig{N: 10000, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	stat, err := series.MeanAbsChange("seis")
	if err != nil {
		log.Fatal(err)
	}

	// Unconstrained run for comparison.
	plainFilters, err := buildFilters(stat)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := gasf.Run(plainFilters, series, gasf.Options{Algorithm: gasf.RG})
	if err != nil {
		log.Fatal(err)
	}

	// Budgeted run: the mesh tolerates at most 15 outputs per 100 tuples.
	budgeted, err := buildFilters(stat)
	if err != nil {
		log.Fatal(err)
	}
	res, err := gasf.RunDegrading(budgeted, series, gasf.Options{Algorithm: gasf.RG},
		gasf.DegradeConfig{BudgetOI: 0.15, Window: 500})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("vibration stream: %d tuples; budget: 0.15 outputs/input per 500-tuple window\n\n", series.Len())
	fmt.Println("window   O/I     granularity scale")
	for i, oi := range res.WindowOI {
		bar := strings.Repeat("#", int(oi*100))
		fmt.Printf("%4d     %.3f   %.2fx   %s\n", i+1, oi, res.ScaleTrajectory[i], bar)
	}
	fmt.Printf("\nunconstrained: %d outputs (O/I %.3f)\n", plain.Stats.DistinctOutputs, plain.Stats.OIRatio())
	fmt.Printf("budgeted:      %d outputs (O/I %.3f)\n",
		res.Result.Stats.DistinctOutputs, res.Result.Stats.OIRatio())
	fmt.Println("\nthe controller degraded granularity only while the eruption lasted,")
	fmt.Println("and every application kept receiving updates at the degraded rate")
	fmt.Println("instead of losing data to congestion.")
}
