// Federated: the paper's group-aware dedup carried across a broker
// tier (DESIGN.md §15).
//
// Three servers start in-process: one core that owns the sources (the
// engines run there) and two edges that hold subscriber sessions.
// gasf.DialFederated routes publishers to the owning core and every
// member of a group — same source, same application, same canonical
// quality spec — to the same edge, so the group's filtered stream
// crosses the core→edge link exactly once however many sessions share
// it. The example subscribes three sessions of one application plus a
// differently-specified second application, prints the edge tier's
// upstream dedup ratio, and shows every session receiving the full
// stream.
//
// In production each server is a gasf-server process:
//
//	gasf-server -role core -self c0 -peers c0=host0:7070
//	gasf-server -role edge -self e0 -peers c0=host0:7070
//	gasf-server -role edge -self e1 -peers c0=host0:7070
//
//	go run ./examples/federated
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"gasf"
)

func main() {
	ctx := context.Background()

	// The core boots first; it learns the (single-node) placement ring
	// once its own address is known.
	core, err := gasf.StartServer(gasf.ServerConfig{
		Federation: gasf.FederationConfig{Role: gasf.RoleCore, Self: "c0"},
	})
	if err != nil {
		log.Fatal(err)
	}
	cores := []gasf.FederationNode{{Name: "c0", Addr: core.Addr().String()}}
	if err := core.UpdatePeers(cores); err != nil {
		log.Fatal(err)
	}

	// Two edges join with the completed core ring.
	var edges []*gasf.Server
	var edgeNodes []gasf.FederationNode
	for _, name := range []string{"e0", "e1"} {
		e, err := gasf.StartServer(gasf.ServerConfig{
			Federation: gasf.FederationConfig{Role: gasf.RoleEdge, Self: name, Peers: cores},
		})
		if err != nil {
			log.Fatal(err)
		}
		edges = append(edges, e)
		edgeNodes = append(edgeNodes, gasf.FederationNode{Name: name, Addr: e.Addr().String()})
	}
	fmt.Printf("federation up: core %s, edges %s\n",
		gasf.FormatPeers(cores), gasf.FormatPeers(edgeNodes))

	b, err := gasf.DialFederated(gasf.FormatPeers(cores), gasf.FormatPeers(edgeNodes))
	if err != nil {
		log.Fatal(err)
	}

	series, err := gasf.NAMOS(gasf.TraceConfig{N: 300, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	src, err := b.OpenSource(ctx, "buoy", series.Schema())
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	subscribe := func(label, app, spec string) {
		sub, err := b.Subscribe(ctx, app, "buoy", spec)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			count := 0
			for {
				_, err := sub.Recv(ctx)
				if errors.Is(err, gasf.ErrStreamEnded) {
					fmt.Printf("%s: stream ended after %d deliveries\n", label, count)
					return
				}
				if err != nil {
					log.Printf("%s: %v", label, err)
					return
				}
				count++
			}
		}()
	}

	// Three sessions of the same group: one core→edge leg serves all
	// of them. The second application is its own group (different spec)
	// and may land on the other edge.
	subscribe("dashboard#1", "dashboard", "DC1(fluoro, 0.4, 0.2)")
	subscribe("dashboard#2", "dashboard", "DC1(fluoro, 0.4, 0.2)")
	subscribe("dashboard#3", "dashboard", "DC1(fluoro, 0.4, 0.2)")
	subscribe("archiver", "archiver", "DC1(fluoro, 0.2, 0.1)")

	for _, e := range edges {
		st := e.FederationStats()
		if st.UpstreamLegs > 0 {
			fmt.Printf("edge %s: %d upstream leg(s) serving %d local session(s) — dedup %.1fx\n",
				st.Self, st.UpstreamLegs, st.LocalSubscribers, st.DedupRatio)
		}
	}

	for i := 0; i < series.Len(); i++ {
		if err := src.Publish(ctx, series.At(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := src.Finish(ctx); err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Close(sctx); err != nil {
		log.Fatal(err)
	}
	for _, e := range edges {
		if err := e.Shutdown(sctx); err != nil {
			log.Fatal(err)
		}
	}
	if err := core.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("federation drained")
}
