// Embedded: live subscribe/unsubscribe churn with no server process.
//
// The same Broker interface the networked example drives over TCP runs
// here entirely in-process on the sharded runtime: a seismic source
// publishes continuously while applications join and leave its filter
// group at tuple boundaries. Each membership change re-derives the group
// (§4.3) — watch the destination labels on shared deliveries shrink and
// grow as the group changes, without the stream ever pausing.
//
//	go run ./examples/embedded
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"gasf"
)

func main() {
	ctx := context.Background()
	b, err := gasf.NewEmbedded(
		gasf.WithShards(2),
		gasf.WithSlowPolicy(gasf.PolicyBlock),
		gasf.WithSubscriberQueue(512),
	)
	if err != nil {
		log.Fatal(err)
	}

	series, err := gasf.SeismicTrace(gasf.TraceConfig{N: 600, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	src, err := b.OpenSource(ctx, "volcano", series.Schema())
	if err != nil {
		log.Fatal(err)
	}
	// Derive deltas from the measured per-step change, as §4.3
	// prescribes for building quality specs from source statistics.
	attr := series.Schema().Names()[0]
	stat, err := series.MeanAbsChange(attr)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	subscribe := func(app, spec string) gasf.Subscription {
		sub, err := b.Subscribe(ctx, app, "volcano", spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("+ %s joined with %s\n", app, sub.Spec())
		wg.Add(1)
		go func() {
			defer wg.Done()
			count, shared := 0, 0
			for {
				d, err := sub.Recv(ctx)
				if errors.Is(err, gasf.ErrStreamEnded) {
					fmt.Printf("  %s: stream ended after %d deliveries (%d shared with other apps)\n",
						app, count, shared)
					return
				}
				if err != nil {
					log.Fatal(err)
				}
				count++
				if len(d.Destinations) > 1 {
					shared++
				}
			}
		}()
		return sub
	}

	// Two applications with different tolerances share the stream from
	// the start.
	coarse := subscribe("coarse", fmt.Sprintf("DC1(%s, %.4g, %.4g)", attr, 3*stat, 1.2*stat))
	subscribe("fine", fmt.Sprintf("DC1(%s, %.4g, %.4g)", attr, 1.5*stat, 0.6*stat))

	third := series.Len() / 3
	for i := 0; i < series.Len(); i++ {
		switch i {
		case third:
			// Mid-stream join: the barrier pins its tuple boundary.
			if err := src.Sync(ctx); err != nil {
				log.Fatal(err)
			}
			subscribe("midband", fmt.Sprintf("DC1(%s, %.4g, %.4g)", attr, 2*stat, 0.8*stat))
		case 2 * third:
			// Mid-stream departure: when Close returns, the group has
			// been re-derived without "coarse".
			if err := src.Sync(ctx); err != nil {
				log.Fatal(err)
			}
			if err := coarse.Close(ctx); err != nil {
				log.Fatal(err)
			}
			fmt.Println("- coarse left the group")
		}
		if err := src.Publish(ctx, series.At(i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := src.Finish(ctx); err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	if err := b.Close(ctx); err != nil {
		log.Fatal(err)
	}

	res := b.Results()["volcano"]
	fmt.Printf("\nsource result: %d inputs -> %d distinct outputs (O/I %.3f) across the churning group\n",
		res.Stats.Inputs, res.Stats.DistinctOutputs, res.Stats.OIRatio())
}
