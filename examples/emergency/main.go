// Emergency response: the chlorine train-derailment scenario of §5.5.1.
//
// A chlorine-concentration source (Gaussian-puff plume model) streams
// readings at 10 tuples/s over a 7-node wireless mesh overlay formed by
// fire trucks, police cars and ambulances. Three command-and-control
// applications subscribe with different granularity needs:
//
//   - fire-prediction wants fine-grained concentration updates,
//   - responder-safety wants medium granularity with tight timeliness
//     (timely cuts bound its delay),
//   - situation-assessment tolerates coarse updates.
//
// The group-aware filtering service deployed on the source node multiplexes
// the three filters' outputs for tuple-level multicast; the example reports
// the bandwidth spent versus self-interested filtering.
//
//	go run ./examples/emergency
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"gasf"
	"gasf/internal/core"
	"gasf/internal/overlay"
	"gasf/internal/solar"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

const sourceName = "chlorine/downtown"

func buildFilters(stat float64) ([]gasf.Filter, error) {
	// Granularity derived from the source's observed variability,
	// the way the paper's §4.3 derives deltas from srcStatistics.
	fire, err := gasf.NewDCFilter("fire-prediction", "chlorine", 4*stat, 2*stat)
	if err != nil {
		return nil, err
	}
	safety, err := gasf.NewDCFilter("responder-safety", "chlorine", 5.5*stat, 2.75*stat)
	if err != nil {
		return nil, err
	}
	situation, err := gasf.NewDCFilter("situation-assessment", "chlorine", 7*stat, 3.5*stat)
	if err != nil {
		return nil, err
	}
	return []gasf.Filter{fire, safety, situation}, nil
}

func main() {
	// The plume model: wind carries the release past a sensor 400 m
	// downwind.
	series, err := trace.Chlorine(trace.ChlorineConfig{
		Config:    trace.Config{N: 6000, Seed: 11, Interval: 100 * time.Millisecond},
		WindSpeed: 2.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	stat, err := series.MeanAbsChange("chlorine")
	if err != nil {
		log.Fatal(err)
	}

	// Mesh overlay: routers on the emergency vehicles.
	net, err := overlay.New(overlay.Config{Nodes: 7, Seed: 3,
		Link: overlay.Link{Delay: 8 * time.Millisecond, Bandwidth: 1e6}})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := solar.NewSystem(net)
	if err != nil {
		log.Fatal(err)
	}
	// Responder safety is latency-critical: bound the filtering delay
	// with timely cuts at 3 s (loose enough to keep candidate sets —
	// and their bandwidth savings — intact; see Fig 4.12's trade-off).
	err = sys.RegisterSource(sourceName, net.NodeByIndex(0), core.Options{
		Algorithm: core.RG,
		Cuts:      true,
		MaxDelay:  3 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	filters, err := buildFilters(stat)
	if err != nil {
		log.Fatal(err)
	}
	for i, f := range filters {
		err := sys.Subscribe(sourceName, solar.Subscription{
			App: f.ID(), Node: net.NodeByIndex(i + 2), Filter: f,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Deploy(); err != nil {
		log.Fatal(err)
	}

	// Stream the plume live through the mesh.
	in := make(chan *tuple.Tuple, 64)
	replayer := &trace.Replayer{Series: series}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	go func() {
		if err := replayer.Run(ctx, in); err != nil {
			log.Printf("replay: %v", err)
		}
	}()

	var mu sync.Mutex
	perApp := make(map[string]int)
	var worstLatency time.Duration
	err = sys.Serve(ctx, map[string]<-chan *tuple.Tuple{sourceName: in}, func(d solar.Delivery) {
		mu.Lock()
		defer mu.Unlock()
		perApp[d.App]++
		if d.Latency > worstLatency {
			worstLatency = d.Latency
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	res := sys.Results()[sourceName]
	fmt.Printf("chlorine plume: %d readings streamed (srcStatistics %.3f)\n", series.Len(), stat)
	fmt.Printf("group-aware output: %d distinct tuples (O/I %.3f), %d regions (%d cut)\n",
		res.Stats.DistinctOutputs, res.Stats.OIRatio(), res.Stats.Regions, res.Stats.RegionsCut)
	for app, n := range perApp {
		fmt.Printf("  %-22s received %4d updates\n", app, n)
	}
	fmt.Printf("worst delivery latency: %v (cut budget 3s + mesh hops)\n", worstLatency)
	fmt.Printf("mesh traffic: %d bytes on links, %d bytes on the wireless medium\n",
		sys.Accounting().TotalBytes(), sys.Accounting().WirelessBytes())

	// Compare with self-interested filtering over the same mesh.
	siFilters, err := buildFilters(stat)
	if err != nil {
		log.Fatal(err)
	}
	si, err := core.RunSelfInterested(siFilters, series, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ratio := float64(res.Stats.DistinctOutputs) / float64(si.Stats.DistinctOutputs)
	fmt.Printf("\nself-interested filtering would multicast %d distinct tuples;\n", si.Stats.DistinctOutputs)
	fmt.Printf("group awareness reduced the bandwidth demand to %.0f%% of that.\n", ratio*100)
}
