// Sensor sampling for multiple queries (§5.5.3).
//
// One buoy thermistor serves four continuous queries with different
// shapes: two stratified-sampling queries (dashboards that need denser
// samples when the water is dynamic) and two delta-compression queries
// (threshold monitors at different granularities). Group-aware filtering
// coordinates all four so the sensor transmits the smallest tuple union
// that satisfies every query — stretching the battery of the sensor node.
//
//	go run ./examples/multiquery
package main

import (
	"fmt"
	"log"
	"time"

	"gasf"
)

func buildFilters(stat float64) ([]gasf.Filter, error) {
	dash1, err := gasf.NewSamplingFilter("dashboard-fast", "tmpr4", time.Second, 20*stat, 50, 20, gasf.Random)
	if err != nil {
		return nil, err
	}
	dash2, err := gasf.NewSamplingFilter("dashboard-slow", "tmpr4", time.Second, 30*stat, 40, 10, gasf.Random)
	if err != nil {
		return nil, err
	}
	monitorFine, err := gasf.NewDCFilter("monitor-fine", "tmpr4", 1.5*stat, 0.75*stat)
	if err != nil {
		return nil, err
	}
	monitorCoarse, err := gasf.NewDCFilter("monitor-coarse", "tmpr4", 3*stat, 1.5*stat)
	if err != nil {
		return nil, err
	}
	return []gasf.Filter{dash1, dash2, monitorFine, monitorCoarse}, nil
}

func main() {
	series, err := gasf.NAMOS(gasf.TraceConfig{N: 8000, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	stat, err := series.MeanAbsChange("tmpr4")
	if err != nil {
		log.Fatal(err)
	}

	filters, err := buildFilters(stat)
	if err != nil {
		log.Fatal(err)
	}
	ga, err := gasf.Run(filters, series, gasf.Options{Algorithm: gasf.RG})
	if err != nil {
		log.Fatal(err)
	}
	siFilters, err := buildFilters(stat)
	if err != nil {
		log.Fatal(err)
	}
	si, err := gasf.RunSelfInterested(siFilters, series, gasf.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("thermistor stream: %d tuples (srcStatistics %.4f)\n\n", series.Len(), stat)
	fmt.Println("per-query deliveries (identical under both modes — every query is satisfied):")
	for _, f := range filters {
		fmt.Printf("  %-16s %5d tuples\n", f.ID(), ga.Stats.PerFilter[f.ID()])
	}
	fmt.Printf("\nsensor transmissions (union): group-aware %d | self-interested %d\n",
		ga.Stats.DistinctOutputs, si.Stats.DistinctOutputs)
	ratio := float64(ga.Stats.DistinctOutputs) / float64(si.Stats.DistinctOutputs)
	fmt.Printf("the sensor radio carries %.0f%% of the self-interested load —\n", ratio*100)
	fmt.Printf("%.0f%% fewer packets drawn from the battery.\n", 100*(1-ratio))
}
