package gasf_test

import (
	"testing"
	"time"

	"gasf"
)

// TestFacadeQuickstart exercises the public API end to end the way the
// README shows it.
func TestFacadeQuickstart(t *testing.T) {
	a, err := gasf.NewDCFilter("A", "temperature", 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gasf.NewDCFilter("B", "temperature", 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	sr := gasf.PaperExample()
	res, err := gasf.Run([]gasf.Filter{a, b}, sr, gasf.Options{Algorithm: gasf.RG})
	if err != nil {
		t.Fatal(err)
	}
	si, err := gasf.RunSelfInterested([]gasf.Filter{a, b}, sr, gasf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// §2.1.3: A and B individually output 5 distinct tuples; coordinated
	// they need only 3.
	if res.Stats.DistinctOutputs != 3 {
		t.Errorf("GA outputs = %d, want 3", res.Stats.DistinctOutputs)
	}
	if si.Stats.DistinctOutputs != 5 {
		t.Errorf("SI outputs = %d, want 5", si.Stats.DistinctOutputs)
	}
}

func TestFacadeConstructors(t *testing.T) {
	if _, err := gasf.NewTrendFilter("t", "v", 1, 0.4, time.Second); err != nil {
		t.Errorf("NewTrendFilter: %v", err)
	}
	if _, err := gasf.NewAvgFilter("a", []string{"x", "y"}, 1, 0.4); err != nil {
		t.Errorf("NewAvgFilter: %v", err)
	}
	if _, err := gasf.NewSamplingFilter("s", "v", time.Second, 1, 50, 20, gasf.Random); err != nil {
		t.Errorf("NewSamplingFilter: %v", err)
	}
	if _, err := gasf.NewStatefulDCFilter("sf", "v", 1, 0.4); err != nil {
		t.Errorf("NewStatefulDCFilter: %v", err)
	}
	sp, err := gasf.ParseSpec("DC1(fluoro, 3.0, 1.5)")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if _, err := sp.Build("x"); err != nil {
		t.Errorf("Spec.Build: %v", err)
	}
}

func TestFacadeEngineIncremental(t *testing.T) {
	a, err := gasf.NewDCFilter("A", "temperature", 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	e, err := gasf.NewEngine([]gasf.Filter{a}, gasf.Options{Algorithm: gasf.PS, Strategy: gasf.PerCandidateSet})
	if err != nil {
		t.Fatal(err)
	}
	sr := gasf.PaperExample()
	for i := 0; i < sr.Len(); i++ {
		if err := e.Step(sr.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	if e.Result().Stats.DistinctOutputs == 0 {
		t.Error("no outputs from incremental engine")
	}
}

func TestFacadeSchemaAndSeries(t *testing.T) {
	s, err := gasf.NewSchema("x")
	if err != nil {
		t.Fatal(err)
	}
	sr := gasf.NewSeries(s)
	tp, err := gasf.NewTuple(s, 0, time.Unix(0, 0), []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.Append(tp); err != nil {
		t.Fatal(err)
	}
	if sr.Len() != 1 {
		t.Errorf("series len = %d", sr.Len())
	}
}

func TestFacadeTraces(t *testing.T) {
	for name, gen := range map[string]func(gasf.TraceConfig) (*gasf.Series, error){
		"namos": gasf.NAMOS, "cow": gasf.CowTrace, "seismic": gasf.SeismicTrace, "fire": gasf.FireTrace,
	} {
		sr, err := gen(gasf.TraceConfig{N: 100, Seed: 1})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if sr.Len() != 100 {
			t.Errorf("%s: len = %d", name, sr.Len())
		}
	}
}
