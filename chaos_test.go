package gasf_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gasf"
	"gasf/internal/faultnet"
	"gasf/internal/wire"
)

// Chaos suite: the overload-survival and fault-injection acceptance
// tests. Degrade-policy subscribers that never see pressure must be
// byte-identical to block-policy ones; a torn, latency-spiked network
// must not change any delivered byte; and a server kill/restart behind
// a partitioning proxy must yield gapless, duplicate-free resumed
// delivery through auto-reconnecting clients.

// calmScript returns sc with every subscriber queue raised far above
// the script's tuple count, so a degrade governor at default watermarks
// can never observe pressure: parity with block is then a determinism
// claim, not a timing accident.
func calmScript(sc parityScript) parityScript {
	raise := func(evs []parityEvent) []parityEvent {
		out := make([]parityEvent, len(evs))
		for i, ev := range evs {
			if ev.join {
				ev.queue = 4096
			}
			out[i] = ev
		}
		return out
	}
	sc.initial = raise(sc.initial)
	phases := make([]parityPhase, len(sc.phases))
	for i, ph := range sc.phases {
		ph.events = raise(ph.events)
		phases[i] = ph
	}
	sc.phases = phases
	return sc
}

func compareFPs(t *testing.T, label string, want, got map[string][]byte) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: app sets differ: %d vs %d", label, len(want), len(got))
	}
	for app, w := range want {
		g, ok := got[app]
		if !ok {
			t.Errorf("%s: app %s missing", label, app)
			continue
		}
		if !bytes.Equal(w, g) {
			t.Errorf("%s: app %s released sequences differ (%d vs %d bytes)", label, app, len(w), len(g))
		}
	}
}

// TestBrokerParityDegradeUnpressured proves the degrade policy is pure
// overhead-free backpressure until pressure actually arrives: a
// never-pressured degrade subscriber receives the byte-identical wire
// sequence a block subscriber does, on both transports.
func TestBrokerParityDegradeUnpressured(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	sc := calmScript(randomParityScript(t, rng, 0))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	runEmbedded := func(opts ...gasf.Option) map[string][]byte {
		emb, err := gasf.NewEmbedded(append([]gasf.Option{gasf.WithEngineOptions(sc.opts)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		fps := driveParity(t, emb, sc)
		if err := emb.Close(ctx); err != nil {
			t.Fatalf("embedded close: %v", err)
		}
		return fps
	}
	blockFPs := runEmbedded()
	degradeFPs := runEmbedded(gasf.WithSlowPolicy(gasf.PolicyDegrade))
	compareFPs(t, "embedded block vs degrade", blockFPs, degradeFPs)

	runServer := func(pol gasf.SlowPolicy) map[string][]byte {
		srv, err := gasf.StartServer(gasf.ServerConfig{Engine: sc.opts, Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := gasf.Dial(srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		fps := driveParity(t, rb, sc)
		if err := rb.Close(ctx); err != nil {
			t.Fatalf("client close: %v", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("server shutdown: %v", err)
		}
		return fps
	}
	netBlockFPs := runServer(gasf.PolicyBlock)
	netDegradeFPs := runServer(gasf.PolicyDegrade)
	compareFPs(t, "networked block vs degrade", netBlockFPs, netDegradeFPs)
	compareFPs(t, "embedded vs networked degrade", degradeFPs, netDegradeFPs)
}

// TestBrokerParityFaultyNetwork runs the parity script through a proxy
// injecting lossless faults — torn writes and latency spikes — and
// demands the delivered byte streams match a clean direct run exactly:
// frame reassembly must survive arbitrary write boundaries.
func TestBrokerParityFaultyNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	sc := randomParityScript(t, rng, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	run := func(through func(addr string) string) map[string][]byte {
		srv, err := gasf.StartServer(gasf.ServerConfig{Engine: sc.opts})
		if err != nil {
			t.Fatal(err)
		}
		rb, err := gasf.Dial(through(srv.Addr().String()))
		if err != nil {
			t.Fatal(err)
		}
		fps := driveParity(t, rb, sc)
		if err := rb.Close(ctx); err != nil {
			t.Fatalf("client close: %v", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatalf("server shutdown: %v", err)
		}
		return fps
	}

	direct := run(func(addr string) string { return addr })
	var proxy *faultnet.Proxy
	faulty := run(func(addr string) string {
		p, err := faultnet.NewProxy(addr, faultnet.Faults{
			Seed:          17,
			PartialWrites: true,
			LatencyEvery:  13,
			Spike:         300 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		proxy = p
		return p.Addr()
	})
	defer proxy.Close()
	compareFPs(t, "direct vs faulty network", direct, faulty)
}

// TestChaosKillRestartResume is the end-to-end overload-survival
// acceptance test for auto-resume: a durable server behind a torn-write
// proxy is hard-killed mid-stream and restarted on a new port; the
// proxy partitions every live connection. A reconnecting client must
// splice transparently — the publisher republishes its unacked window,
// the subscriber resumes from its last offset — and the subscriber's
// full stream must be gapless, duplicate-free and byte-identical to
// the released series.
func TestChaosKillRestartResume(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	srv, err := gasf.StartServer(gasf.ServerConfig{DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := faultnet.NewProxy(srv.Addr().String(), faultnet.Faults{Seed: 23, PartialWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	rb, err := gasf.Dial(proxy.Addr(), gasf.WithReconnect(gasf.Backoff{
		Base: 20 * time.Millisecond,
		Max:  250 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	wave1 := recoverySeries(t, 100, 0)
	src, err := rb.OpenSource(ctx, "src", wave1.Schema())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rb.Subscribe(ctx, "a", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	publishAll(ctx, t, src, wave1)

	// The consumer sits in Recv throughout — the live pattern auto-resume
	// serves: its pending receive fails the instant the partition hits,
	// and the redial loop re-establishes the session on its own.
	var (
		mu        sync.Mutex
		collected []*gasf.Delivery
		count     atomic.Int64
	)
	consumerDone := make(chan error, 1)
	go func() {
		for {
			d, err := sub.Recv(ctx)
			if errors.Is(err, gasf.ErrStreamEnded) {
				consumerDone <- nil
				return
			}
			if err != nil {
				consumerDone <- err
				return
			}
			mu.Lock()
			collected = append(collected, d)
			mu.Unlock()
			count.Add(1)
		}
	}()
	waitCount := func(n int, what string) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for count.Load() < int64(n) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (%d/%d deliveries)", what, count.Load(), n)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	// Every released pre-crash delivery lands (the engine holds the last
	// tuple's set open, so 99 of 100 release).
	waitCount(wave1.Len()-1, "pre-crash deliveries")

	// Crash: hard abort, then partition every surviving relay.
	if err := srv.Close(); err != nil {
		t.Fatalf("hard close: %v", err)
	}
	proxy.CutAll()

	// Restart over the same directory on a fresh port; the proxy's
	// stable front address is retargeted underneath the clients.
	srv2, err := gasf.StartServer(gasf.ServerConfig{DataDir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	proxy.SetBackend(srv2.Addr().String())
	proxy.CutAll()

	// Reattach the publisher first: the barrier forces its redial with an
	// empty replay window (wave 1 was acknowledged before the crash), so
	// the source is live on the restarted server before any new data.
	if err := src.Sync(ctx); err != nil {
		t.Fatalf("post-restart sync: %v", err)
	}
	// Then let the subscriber's auto-resume land before publishing: a
	// release fanned out while no subscriber is attached belongs to
	// nobody and is gone (filtering semantics), which would be a real
	// gap. Applications get this ordering for free when the publisher
	// keeps streaming — the subscriber's redial wins long before the
	// next release — but the test pins it explicitly.
	joinDeadline := time.Now().Add(60 * time.Second)
	for len(srv2.Debug().Subscribers) == 0 {
		if time.Now().After(joinDeadline) {
			t.Fatal("subscriber auto-resume never reattached")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The same handles keep working: the publisher splices onto the
	// recovered log, the subscriber resumed from its last offset.
	wave2 := recoverySeries(t, 100, 100)
	publishAll(ctx, t, src, wave2)
	waitCount(wave1.Len()-1+wave2.Len()-1, "post-crash deliveries")
	if err := src.Finish(ctx); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if err := <-consumerDone; err != nil {
		t.Fatalf("consumer: %v", err)
	}

	// Offsets must continue densely across the crash: no gap, no
	// duplicate. Wave-1's held-back tuple (seq 99) was never released,
	// so wave 2 starts at offset 99 with seq 100.
	var fp []byte
	record := func(d *gasf.Delivery) {
		buf, err := wire.AppendTransmission(fp, d.Tuple, d.Destinations)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		fp = buf
	}
	if want := wave1.Len() - 1 + wave2.Len(); len(collected) != want {
		t.Fatalf("deliveries = %d, want %d", len(collected), want)
	}
	for i, d := range collected {
		if d.Offset != uint64(i) {
			t.Errorf("delivery %d carries offset %d (gap or duplicate across the crash)", i, d.Offset)
		}
		wantSeq := i
		if i >= wave1.Len()-1 {
			wantSeq = wave1.Len() + (i - (wave1.Len() - 1))
		}
		if d.Tuple.Seq != wantSeq {
			t.Errorf("delivery %d carries seq %d, want %d", i, d.Tuple.Seq, wantSeq)
		}
		record(d)
	}

	// Byte-identity: the spliced stream is exactly the released series —
	// wave 1 minus its held-back tail, then all of wave 2 — addressed to
	// this app, wire-encoded.
	var want []byte
	appendWant := func(sr *gasf.Series, n int) {
		for i := 0; i < n; i++ {
			buf, err := wire.AppendTransmission(want, sr.At(i), []string{"a"})
			if err != nil {
				t.Fatalf("encode expectation: %v", err)
			}
			want = buf
		}
	}
	appendWant(wave1, wave1.Len()-1)
	appendWant(wave2, wave2.Len())
	if !bytes.Equal(fp, want) {
		t.Fatalf("resumed stream is not byte-identical to the released series (%d vs %d bytes)", len(fp), len(want))
	}

	closeCtx, closeCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer closeCancel()
	if err := rb.Close(closeCtx); err != nil {
		t.Errorf("client close: %v", err)
	}
	if err := srv2.Shutdown(closeCtx); err != nil {
		t.Errorf("server shutdown: %v", err)
	}
}

// TestEvictedErrEmbedded pins the typed eviction error on the embedded
// transport: a drop-policy subscriber past its drop budget ends with
// gasf.ErrEvicted, not a bare stream end.
func TestEvictedErrEmbedded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	b, err := gasf.NewEmbedded(gasf.WithSlowPolicy(gasf.PolicyDrop), gasf.WithEvictAfterDrops(1))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close(ctx)

	sr := recoverySeries(t, 500, 0)
	src, err := b.OpenSource(ctx, "src", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := b.Subscribe(ctx, "a", "src", "DC1(v, 0.5, 0)", gasf.WithQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	publishAll(ctx, t, src, sr)
	if err := src.Finish(ctx); err != nil {
		t.Fatalf("finish: %v", err)
	}
	// The subscriber never consumed: 499 deliveries overflowed its
	// 1-deep queue, far past the 1-drop budget.
	var recvErr error
	for {
		if _, recvErr = sub.Recv(ctx); recvErr != nil {
			break
		}
	}
	if !errors.Is(recvErr, gasf.ErrEvicted) {
		t.Fatalf("Recv after eviction = %v, want gasf.ErrEvicted", recvErr)
	}
}

// TestEvictedErrNetworked pins the typed eviction error across the
// wire: the server's eviction notice frame must surface to the client
// as gasf.ErrEvicted. Wide tuples make the flood outrun kernel socket
// buffering, so the send queue observably overflows.
func TestEvictedErrNetworked(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	srv, err := gasf.StartServer(gasf.ServerConfig{Policy: gasf.PolicyDrop, EvictAfterDrops: 1})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := gasf.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	const fields = 64
	names := make([]string, fields)
	names[0] = "v"
	for i := 1; i < fields; i++ {
		names[i] = "p" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	schema, err := gasf.NewSchema(names...)
	if err != nil {
		t.Fatal(err)
	}
	src, err := rb.OpenSource(ctx, "src", schema)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := rb.Subscribe(ctx, "a", "src", "DC1(v, 0.5, 0)", gasf.WithQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}

	base := time.Unix(1, 0)
	vals := make([]float64, fields)
	const total = 20000
	for off := 0; off < total; off += 1000 {
		batch := make([]*gasf.Tuple, 0, 1000)
		for i := 0; i < 1000; i++ {
			seq := off + i
			vals[0] = float64(seq)
			tp, err := gasf.NewTuple(schema, seq, base.Add(time.Duration(seq+1)*time.Millisecond), vals)
			if err != nil {
				t.Fatal(err)
			}
			batch = append(batch, tp)
		}
		if err := src.PublishBatch(ctx, batch); err != nil {
			t.Fatalf("publish: %v", err)
		}
	}
	if err := src.Sync(ctx); err != nil {
		t.Fatalf("sync: %v", err)
	}

	// Only now start reading: the flood overflowed the 1-deep queue
	// while the write loop was wedged against full socket buffers, so
	// the eviction notice is already on its way.
	var recvErr error
	for {
		if _, recvErr = sub.Recv(ctx); recvErr != nil {
			break
		}
	}
	if !errors.Is(recvErr, gasf.ErrEvicted) {
		t.Fatalf("Recv after eviction = %v, want gasf.ErrEvicted", recvErr)
	}

	closeCtx, closeCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer closeCancel()
	rb.Close(closeCtx)
	if err := srv.Shutdown(closeCtx); err != nil {
		t.Errorf("server shutdown: %v", err)
	}
}
