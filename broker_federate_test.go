package gasf_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"gasf"
	"gasf/internal/faultnet"
	"gasf/internal/federate"
	"gasf/internal/wire"
)

// The federation acceptance suite: the same scripts the single-node
// parity tests run must yield byte-identical per-subscriber streams
// when driven through a core/edge deployment — publishers on the
// source-owning cores, subscribers fanned out from deduplicated
// upstream relay legs on the edges — including mid-stream churn,
// rebalanced placement, and a network partition healed by resume.

// fedCluster is an in-process federated deployment: nCores core
// servers plus nEdges edge servers sharing one placement ring.
type fedCluster struct {
	cores     []*gasf.Server
	edges     []*gasf.Server
	coreNodes []gasf.FederationNode
	edgeNodes []gasf.FederationNode
}

func (fc *fedCluster) coreSpec() string { return gasf.FormatPeers(fc.coreNodes) }
func (fc *fedCluster) edgeSpec() string { return gasf.FormatPeers(fc.edgeNodes) }

// startFedCluster boots the cores first (peer addresses are unknown
// until each listener is up, so placement enforcement is installed
// with UpdatePeers once all cores are listening), then the edges with
// the completed core ring.
func startFedCluster(t *testing.T, nCores, nEdges int, engine gasf.Options, durable bool) *fedCluster {
	t.Helper()
	fc := &fedCluster{}
	for i := 0; i < nCores; i++ {
		cfg := gasf.ServerConfig{
			Engine:     engine,
			Federation: gasf.FederationConfig{Role: gasf.RoleCore, Self: fmt.Sprintf("c%d", i)},
		}
		if durable {
			cfg.DataDir = t.TempDir()
		}
		srv, err := gasf.StartServer(cfg)
		if err != nil {
			t.Fatalf("start core %d: %v", i, err)
		}
		shutdownOnCleanup(t, srv)
		fc.cores = append(fc.cores, srv)
		fc.coreNodes = append(fc.coreNodes, gasf.FederationNode{Name: fmt.Sprintf("c%d", i), Addr: srv.Addr().String()})
	}
	for _, c := range fc.cores {
		if err := c.UpdatePeers(fc.coreNodes); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nEdges; i++ {
		srv, err := gasf.StartServer(gasf.ServerConfig{
			Engine: engine,
			Federation: gasf.FederationConfig{
				Role:  gasf.RoleEdge,
				Self:  fmt.Sprintf("e%d", i),
				Peers: fc.coreNodes,
			},
		})
		if err != nil {
			t.Fatalf("start edge %d: %v", i, err)
		}
		shutdownOnCleanup(t, srv)
		fc.edges = append(fc.edges, srv)
		fc.edgeNodes = append(fc.edgeNodes, gasf.FederationNode{Name: fmt.Sprintf("e%d", i), Addr: srv.Addr().String()})
	}
	return fc
}

// shutdownOnCleanup registers a graceful shutdown; registration order
// makes edges (registered after their cores) shut down first, so leg
// goodbyes still find their cores listening.
func shutdownOnCleanup(t *testing.T, srv *gasf.Server) {
	t.Helper()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
}

// pollUntil spins on cond with a deadline — for cluster state that
// converges asynchronously (leg teardown acks, rebalance rejoins).
func pollUntil(t *testing.T, wait time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(wait)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFederatedParitySingleNode is the cross-node acceptance test:
// randomized publish/subscribe/churn scripts — including mid-stream
// joins and acked departures at Sync barriers — produce byte-identical
// per-subscriber wire sequences on a single networked broker and on a
// federated deployment, both with one core and with the groups' sources
// spread over two cores.
func TestFederatedParitySingleNode(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	cases := 4
	if testing.Short() {
		cases = 2
	}
	for c := 0; c < cases; c++ {
		sc := randomParityScript(t, rng, c)
		nCores := 1 + c%2
		t.Run(fmt.Sprintf("case%d_cores%d", c, nCores), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()

			srv, err := gasf.StartServer(gasf.ServerConfig{Engine: sc.opts})
			if err != nil {
				t.Fatal(err)
			}
			single, err := gasf.Dial(srv.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			singleFPs := driveParity(t, single, sc)
			if err := single.Close(ctx); err != nil {
				t.Fatal(err)
			}
			if err := srv.Shutdown(ctx); err != nil {
				t.Fatal(err)
			}

			fc := startFedCluster(t, nCores, 2, sc.opts, false)
			fb, err := gasf.DialFederated(fc.coreSpec(), fc.edgeSpec())
			if err != nil {
				t.Fatal(err)
			}
			fedFPs := driveParity(t, fb, sc)
			if err := fb.Close(ctx); err != nil {
				t.Fatal(err)
			}

			if len(singleFPs) != len(fedFPs) {
				t.Fatalf("app sets differ: single %d, federated %d", len(singleFPs), len(fedFPs))
			}
			for app, want := range singleFPs {
				got, ok := fedFPs[app]
				if !ok {
					t.Errorf("app %s missing from federated run", app)
					continue
				}
				if !bytes.Equal(want, got) {
					t.Errorf("case %d (alg=%v strat=%v cuts=%v): app %s released sequences differ (single %d bytes, federated %d bytes)",
						c, sc.opts.Algorithm, sc.opts.Strategy, sc.opts.Cuts, app, len(want), len(got))
				}
			}
		})
	}
}

// TestFederatedDedupSharing pins the dedup contract the federation
// exists for: K local sessions subscribing the same (app, source, spec)
// group share exactly one upstream leg, each receives the full stream,
// and the last local departure tears the leg down with an acked
// upstream goodbye. A same-app subscription under a different spec is a
// conflict, rejected exactly as a single node rejects a duplicate app.
func TestFederatedDedupSharing(t *testing.T) {
	const k = 4
	const n = 200
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fc := startFedCluster(t, 1, 1, gasf.Options{}, false)
	b, err := gasf.DialFederated(fc.coreSpec(), fc.edgeSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close(ctx)

	sr := recoverySeries(t, n, 0)
	src, err := b.OpenSource(ctx, "src", sr.Schema())
	if err != nil {
		t.Fatal(err)
	}
	var shared []gasf.Subscription
	for i := 0; i < k; i++ {
		sub, err := b.Subscribe(ctx, "shared", "src", "DC1(v, 0.5, 0)")
		if err != nil {
			t.Fatalf("shared session %d: %v", i, err)
		}
		shared = append(shared, sub)
	}
	solo, err := b.Subscribe(ctx, "solo", "src", "DC1(v, 0.75, 0)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(ctx, "solo", "src", "DC1(v, 0.25, 0)"); err == nil {
		t.Fatal("same app under a different spec accepted")
	} else if !strings.Contains(err.Error(), "different spec") {
		t.Fatalf("spec conflict surfaced as: %v", err)
	}

	st := fc.edges[0].FederationStats()
	if st.UpstreamLegs != 2 || st.LocalSubscribers != k+1 {
		t.Fatalf("edge stats: %d legs, %d local subscribers, want 2 and %d", st.UpstreamLegs, st.LocalSubscribers, k+1)
	}
	if want := float64(k+1) / 2; st.DedupRatio != want {
		t.Fatalf("dedup ratio %.2f, want %.2f", st.DedupRatio, want)
	}
	// The core sees exactly one session per group, tagged with the edge
	// it relays for — K-1 of the K shared sessions never crossed the
	// core link.
	core := fc.cores[0].Debug()
	if len(core.Subscribers) != 2 {
		t.Fatalf("core holds %d subscriber sessions, want 2", len(core.Subscribers))
	}
	for _, sub := range core.Subscribers {
		if sub.RelayEdge != "e0" {
			t.Fatalf("core session %s not tagged as a relay from e0: %+v", sub.App, sub)
		}
	}

	if err := src.PublishBatch(ctx, seriesBatch(sr)); err != nil {
		t.Fatal(err)
	}
	if err := src.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	var fps [][]byte
	for i, sub := range shared {
		fp, count := drainFingerprint(ctx, t, sub)
		if count != n {
			t.Fatalf("shared session %d received %d deliveries, want %d", i, count, n)
		}
		fps = append(fps, fp)
	}
	for i := 1; i < len(fps); i++ {
		if !bytes.Equal(fps[0], fps[i]) {
			t.Fatalf("shared sessions 0 and %d received different streams", i)
		}
	}
	if _, count := drainFingerprint(ctx, t, solo); count != n {
		t.Fatalf("solo received %d deliveries, want %d", count, n)
	}
	// Finish ended every stream; the legs must unwind to zero with their
	// departures acked by the core.
	pollUntil(t, 10*time.Second, "legs to unwind", func() bool {
		return fc.edges[0].FederationStats().UpstreamLegs == 0
	})
	if got := fc.cores[0].Counters().FedRelayLegsIn; got != 2 {
		t.Fatalf("core served %d relay legs, want 2", got)
	}
}

// seriesBatch collects a series into one publishable batch.
func seriesBatch(sr *gasf.Series) []*gasf.Tuple {
	batch := make([]*gasf.Tuple, 0, sr.Len())
	for i := 0; i < sr.Len(); i++ {
		batch = append(batch, sr.At(i))
	}
	return batch
}

// drainFingerprint consumes a subscription to its graceful end,
// returning the wire fingerprint and delivery count.
func drainFingerprint(ctx context.Context, t *testing.T, sub gasf.Subscription) ([]byte, int) {
	t.Helper()
	var fp []byte
	count := 0
	for {
		d, err := sub.Recv(ctx)
		if errors.Is(err, gasf.ErrStreamEnded) {
			if err := sub.Close(ctx); err != nil {
				t.Fatal(err)
			}
			return fp, count
		}
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		fp, err = wire.AppendTransmission(fp, d.Tuple, d.Destinations)
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
}

// TestFederatedSpecCanonicalization is the regression test for the
// group key: spec renderings differing only in case, whitespace, float
// notation, or an explicit default prescription token canonicalize to
// one Spec.String(), so they join one group and share one upstream leg
// instead of splitting it.
func TestFederatedSpecCanonicalization(t *testing.T) {
	renderings := map[string][]string{
		"DC1(v, 0.5, 0)": {
			"DC1(v, 0.5, 0)",
			"dc1(v,0.5,0)",
			"DC( v , 5e-1 , 0.0 )",
			"DC1(v, .5, 0e0)",
		},
		"SS(v, 1000, 0.15, 50, 20)": {
			"SS(v, 1000, 0.15, 50, 20)",
			"ss(v, 1e3, 1.5e-1, 5e1, 2e1)",
			"SS(v, 1000.0, 0.150, 50, 20, random)",
		},
	}
	for want, variants := range renderings {
		for _, text := range variants {
			sp, err := gasf.ParseSpec(text)
			if err != nil {
				t.Fatalf("parse %q: %v", text, err)
			}
			if got := sp.String(); got != want {
				t.Errorf("%q canonicalizes to %q, want %q", text, got, want)
			}
		}
	}

	// And on the wire: every rendering of the group's spec lands in the
	// same leg — none is rejected as a conflicting spec, none dials a
	// second upstream session.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fc := startFedCluster(t, 1, 1, gasf.Options{}, false)
	b, err := gasf.DialFederated(fc.coreSpec(), fc.edgeSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close(ctx)
	sr := recoverySeries(t, 1, 0)
	if _, err := b.OpenSource(ctx, "src", sr.Schema()); err != nil {
		t.Fatal(err)
	}
	for i, text := range renderings["DC1(v, 0.5, 0)"] {
		if _, err := b.Subscribe(ctx, "app", "src", text); err != nil {
			t.Fatalf("rendering %d %q: %v", i, text, err)
		}
	}
	st := fc.edges[0].FederationStats()
	if st.UpstreamLegs != 1 || st.LocalSubscribers != 4 {
		t.Fatalf("edge stats: %d legs, %d local subscribers, want 1 and 4", st.UpstreamLegs, st.LocalSubscribers)
	}
}

// TestFederatedRebalance moves a source's ownership between cores with
// live subscribers attached: UpdatePeers cuts the stale leg, the leg
// re-resolves the owner and rejoins it, and the subscriber's stream
// continues with the new core's output — no session restart on the
// subscriber side.
func TestFederatedRebalance(t *testing.T) {
	const n1, n2 = 80, 80
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fc := startFedCluster(t, 2, 1, gasf.Options{}, false)

	// A source the full ring places on c0, so removing c0 moves it.
	topo, err := federate.NewTopology(fc.coreNodes)
	if err != nil {
		t.Fatal(err)
	}
	source := ""
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("src%d", i)
		if topo.Owner(name).Name == "c0" {
			source = name
			break
		}
	}
	if source == "" {
		t.Fatal("no source hashed onto c0")
	}

	total := recoverySeries(t, n1+n2, 0)
	bSub, err := gasf.DialFederated(fc.coreSpec(), fc.edgeSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer bSub.Close(ctx)
	bPub, err := gasf.DialFederated(fc.coreSpec(), fc.edgeSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer bPub.Close(ctx)
	src, err := bPub.OpenSource(ctx, source, total.Schema())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := bSub.Subscribe(ctx, "w", source, "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1 on c0. The engine holds the last tuple's region open until
	// the next tuple or a finish, so n1 publishes release n1-1 live.
	if err := src.PublishBatch(ctx, seriesBatch(total)[:n1]); err != nil {
		t.Fatal(err)
	}
	var values []float64
	recvN := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			d, err := sub.Recv(ctx)
			if err != nil {
				t.Fatalf("delivery %d: %v", len(values), err)
			}
			values = append(values, d.Tuple.ValueAt(0))
		}
	}
	recvN(n1 - 1)
	// The node-leave choreography: drain c0 first — its engine tail
	// flushes through the leg (the held n1'th release arrives), then the
	// leg's goodbye carries the drain tag, which means "re-establish",
	// not "stream over", so the local subscriber session survives — and
	// only then shrink the ring so the leg's redial resolves to c1.
	if err := fc.cores[0].Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	recvN(1)
	newRing := fc.coreNodes[1:2]
	for _, srv := range append(fc.cores[1:], fc.edges...) {
		if err := srv.UpdatePeers(newRing); err != nil {
			t.Fatal(err)
		}
	}
	bPub2, err := gasf.DialFederated(gasf.FormatPeers(newRing), fc.edgeSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer bPub2.Close(ctx)
	src2, err := bPub2.OpenSource(ctx, source, total.Schema())
	if err != nil {
		t.Fatal(err)
	}
	// The relay app must be back in the group on c1 before phase 2, or
	// its releases are derived without it (a live-only deployment has no
	// history to backfill from — exactly the single-node semantics of a
	// departed subscriber).
	pollUntil(t, 10*time.Second, "leg to rejoin on c1", func() bool {
		for _, s := range fc.cores[1].Debug().Subscribers {
			if s.App == "w" && s.Source == source {
				return true
			}
		}
		return false
	})
	if err := src2.PublishBatch(ctx, seriesBatch(total)[n1:]); err != nil {
		t.Fatal(err)
	}
	if err := src2.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	for {
		d, err := sub.Recv(ctx)
		if errors.Is(err, gasf.ErrStreamEnded) {
			break
		}
		if err != nil {
			t.Fatalf("phase 2 delivery %d: %v", len(values), err)
		}
		values = append(values, d.Tuple.ValueAt(0))
	}
	// Content parity, not offset parity: the new owner's stream restarts
	// its own numbering, but the subscriber must see every value of both
	// phases in order with no duplicates.
	if len(values) != n1+n2 {
		t.Fatalf("received %d deliveries across the move, want %d", len(values), n1+n2)
	}
	for i, v := range values {
		if v != float64(i) {
			t.Fatalf("delivery %d carries value %g, want %d", i, v, i)
		}
	}
	if moved := fc.edges[0].Counters().FedLegRedials; moved == 0 {
		t.Fatal("rebalance did not redial the leg")
	}
}

// TestFederatedPartitionResume is the chaos acceptance test: a faultnet
// partition severs the edge from its durable core mid-stream, in-flight
// frames are lost with the connection, and the leg's resume from its
// last seen offset backfills exactly the lost tail — subscribers see a
// gapless, duplicate-free stream with dense offsets, byte-identical to
// a single durable node running the same script with no partition.
func TestFederatedPartitionResume(t *testing.T) {
	const n1, n2 = 150, 100
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	total := recoverySeries(t, n1+n2, 0)

	// The single-node reference run.
	refSrv, err := gasf.StartServer(gasf.ServerConfig{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	shutdownOnCleanup(t, refSrv)
	ref, err := gasf.Dial(refSrv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	refSrc, err := ref.OpenSource(ctx, "src", total.Schema())
	if err != nil {
		t.Fatal(err)
	}
	refSub, err := ref.Subscribe(ctx, "w", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	if err := refSrc.PublishBatch(ctx, seriesBatch(total)); err != nil {
		t.Fatal(err)
	}
	if err := refSrc.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	refFP, refCount := drainFingerprint(ctx, t, refSub)
	if refCount != n1+n2 {
		t.Fatalf("reference run released %d deliveries, want %d", refCount, n1+n2)
	}
	if err := ref.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// The federated run: the edge reaches its durable core only through
	// a faultnet proxy whose connections can be cut in one call.
	core, err := gasf.StartServer(gasf.ServerConfig{
		DataDir:    t.TempDir(),
		Federation: gasf.FederationConfig{Role: gasf.RoleCore, Self: "c0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdownOnCleanup(t, core)
	proxy, err := faultnet.NewProxy(core.Addr().String(), faultnet.Faults{Seed: 20260807})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	proxied := []gasf.FederationNode{{Name: "c0", Addr: proxy.Addr()}}
	edge, err := gasf.StartServer(gasf.ServerConfig{
		Federation: gasf.FederationConfig{Role: gasf.RoleEdge, Self: "e0", Peers: proxied},
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdownOnCleanup(t, edge)
	edgeNodes := []gasf.FederationNode{{Name: "e0", Addr: edge.Addr().String()}}

	// The publisher dials the core directly — the partition under test
	// is the inter-broker link, not the client's.
	bPub, err := gasf.DialFederated(gasf.FormatPeers([]gasf.FederationNode{{Name: "c0", Addr: core.Addr().String()}}), gasf.FormatPeers(edgeNodes))
	if err != nil {
		t.Fatal(err)
	}
	defer bPub.Close(ctx)
	bSub, err := gasf.DialFederated(gasf.FormatPeers(proxied), gasf.FormatPeers(edgeNodes))
	if err != nil {
		t.Fatal(err)
	}
	defer bSub.Close(ctx)

	src, err := bPub.OpenSource(ctx, "src", total.Schema())
	if err != nil {
		t.Fatal(err)
	}
	// Two sessions of the same group: the dedup must survive the
	// partition too — one leg before, one leg after.
	var subs []gasf.Subscription
	for i := 0; i < 2; i++ {
		sub, err := bSub.Subscribe(ctx, "w", "src", "DC1(v, 0.5, 0)")
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, sub)
	}
	if err := src.PublishBatch(ctx, seriesBatch(total)[:n1]); err != nil {
		t.Fatal(err)
	}
	// Cut once every phase-1 record is in the core's log (n1 publishes
	// release n1-1 records; the last region stays open until phase 2),
	// not once it is delivered: whatever of the tail is still crossing
	// the proxy dies with the connections, and only the leg's resume can
	// restore it. The leg must have observed at least one offset first —
	// its resume point is the last offset it has SEEN, so a leg cut
	// before any delivery has no checkpoint and would rejoin live.
	pollUntil(t, 10*time.Second, "phase 1 to be logged", func() bool {
		for _, s := range core.Debug().Sources {
			if s.Name == "src" {
				return s.NextOffset >= n1-1
			}
		}
		return false
	})
	pollUntil(t, 10*time.Second, "the leg to observe a resume checkpoint", func() bool {
		fed := edge.Debug().Federation
		return fed != nil && len(fed.Legs) == 1 && fed.Legs[0].Durable
	})
	proxy.CutAll()
	// The leg redials through the proxy and resumes from its last seen
	// offset; publishing stays quiet until the group member is back so
	// phase-2 releases are addressed to it, as in the reference run. The
	// redial counter is the barrier — the core's old relay session can
	// outlive the cut for a moment, so its presence alone would race.
	pollUntil(t, 10*time.Second, "leg to redial after the partition", func() bool {
		return edge.Counters().FedLegRedials >= 1
	})
	pollUntil(t, 10*time.Second, "group member to rejoin the core", func() bool {
		for _, s := range core.Debug().Subscribers {
			if s.App == "w" {
				return true
			}
		}
		return false
	})
	if err := src.PublishBatch(ctx, seriesBatch(total)[n1:]); err != nil {
		t.Fatal(err)
	}
	if err := src.Finish(ctx); err != nil {
		t.Fatal(err)
	}

	for i, sub := range subs {
		var fp []byte
		var offsets []uint64
		for {
			d, err := sub.Recv(ctx)
			if errors.Is(err, gasf.ErrStreamEnded) {
				break
			}
			if err != nil {
				t.Fatalf("session %d delivery %d: %v", i, len(offsets), err)
			}
			fp, err = wire.AppendTransmission(fp, d.Tuple, d.Destinations)
			if err != nil {
				t.Fatal(err)
			}
			offsets = append(offsets, d.Offset)
		}
		if len(offsets) != n1+n2 {
			t.Fatalf("session %d received %d deliveries, want %d", i, len(offsets), n1+n2)
		}
		// Dense offsets: gapless and duplicate-free through the healed
		// partition.
		for j, off := range offsets {
			if off != uint64(j) {
				t.Fatalf("session %d delivery %d carries offset %d, want %d", i, j, off, j)
			}
		}
		if !bytes.Equal(fp, refFP) {
			t.Errorf("session %d stream differs from the single-node reference (%d vs %d bytes)", i, len(fp), len(refFP))
		}
	}
	ctr := edge.Counters()
	if ctr.FedLegRedials == 0 || ctr.FedLegResumes == 0 {
		t.Fatalf("partition healed without the resume path: %d redials, %d resumes", ctr.FedLegRedials, ctr.FedLegResumes)
	}
	if legs := edge.FederationStats().UpstreamLegs; legs != 0 {
		t.Fatalf("%d legs alive after the streams ended", legs)
	}
}

// TestFederatedClientReconnectThroughEdge is the regression test for
// reconnect-aware clients behind an edge: the edge relays the durable
// core's offset-bearing frames byte-identically, so a WithReconnect
// client that loses its connection redials asking to resume from its
// checkpoint — which an edge cannot serve. The typed
// ErrResumeUnavailable rejection must send the client down the
// live-fallback path so it reattaches and streams on, rather than
// retrying the resume forever.
func TestFederatedClientReconnectThroughEdge(t *testing.T) {
	const n1, n2 = 60, 60
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	total := recoverySeries(t, n1+n2, 0)

	core, err := gasf.StartServer(gasf.ServerConfig{
		DataDir:    t.TempDir(),
		Federation: gasf.FederationConfig{Role: gasf.RoleCore, Self: "c0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdownOnCleanup(t, core)
	coreNodes := []gasf.FederationNode{{Name: "c0", Addr: core.Addr().String()}}
	edge, err := gasf.StartServer(gasf.ServerConfig{
		Federation: gasf.FederationConfig{Role: gasf.RoleEdge, Self: "e0", Peers: coreNodes},
	})
	if err != nil {
		t.Fatal(err)
	}
	shutdownOnCleanup(t, edge)

	// The cut under test is the client's own link to the edge; the
	// edge↔core link stays healthy throughout.
	proxy, err := faultnet.NewProxy(edge.Addr().String(), faultnet.Faults{Seed: 20260807})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	bPub, err := gasf.Dial(core.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer bPub.Close(ctx)
	bSub, err := gasf.Dial(proxy.Addr(), gasf.WithReconnect(gasf.Backoff{
		Base: 20 * time.Millisecond,
		Max:  250 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer bSub.Close(ctx)

	src, err := bPub.OpenSource(ctx, "src", total.Schema())
	if err != nil {
		t.Fatal(err)
	}
	// A second session of the same group, dialed past the proxy, holds
	// the upstream leg — and with it the group's membership at the core —
	// alive across the cut, so the only thing under test is the client's
	// own reconnect, not the leg teardown raced against it.
	bHold, err := gasf.Dial(edge.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer bHold.Close(ctx)
	hold, err := bHold.Subscribe(ctx, "w", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := bSub.Subscribe(ctx, "w", "src", "DC1(v, 0.5, 0)")
	if err != nil {
		t.Fatal(err)
	}

	// n1 publishes release n1-1 live (the last region stays open until
	// phase 2); the relayed offset-bearing frames give the client a
	// resume checkpoint, arming the trap.
	if err := src.PublishBatch(ctx, seriesBatch(total)[:n1]); err != nil {
		t.Fatal(err)
	}
	var values []float64
	for i := 0; i < n1-1; i++ {
		d, err := sub.Recv(ctx)
		if err != nil {
			t.Fatalf("delivery %d: %v", len(values), err)
		}
		values = append(values, d.Tuple.ValueAt(0))
	}
	accepted := edge.Counters().SubscribersAccepted
	proxy.CutAll()
	// The next receive notices the lost connection and redials: resume
	// first, the edge's typed refusal, then the live fallback. The
	// receive itself blocks until phase 2 flows, so it runs aside.
	next := make(chan error, 1)
	go func() {
		d, err := sub.Recv(ctx)
		if err == nil {
			values = append(values, d.Tuple.ValueAt(0))
		}
		next <- err
	}()
	pollUntil(t, 10*time.Second, "client to reattach through the edge", func() bool {
		return edge.Counters().SubscribersAccepted > accepted
	})
	// The reattached session must have joined the held leg, not dialed a
	// second upstream session for the same group.
	if st := edge.FederationStats(); st.UpstreamLegs != 1 {
		t.Fatalf("%d upstream legs after the reconnect, want the shared 1", st.UpstreamLegs)
	}
	if err := src.PublishBatch(ctx, seriesBatch(total)[n1:]); err != nil {
		t.Fatal(err)
	}
	if err := src.Finish(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-next; err != nil {
		t.Fatalf("first receive after the cut: %v", err)
	}
	for {
		d, err := sub.Recv(ctx)
		if errors.Is(err, gasf.ErrStreamEnded) {
			break
		}
		if err != nil {
			t.Fatalf("delivery %d: %v", len(values), err)
		}
		values = append(values, d.Tuple.ValueAt(0))
	}
	// Nothing was published between the cut and the reattach, so the
	// live fallback loses nothing: the client must see every value —
	// phase 1, the held tail release, then phase 2 — exactly once.
	if len(values) != n1+n2 {
		t.Fatalf("received %d deliveries across the reconnect, want %d", len(values), n1+n2)
	}
	for i, v := range values {
		if v != float64(i) {
			t.Fatalf("delivery %d carries value %g, want %d", i, v, i)
		}
	}
	// And the holder, which never disconnected, saw the whole stream.
	if _, count := drainFingerprint(ctx, t, hold); count != n1+n2 {
		t.Fatalf("holder received %d deliveries, want %d", count, n1+n2)
	}
}

// TestFederatedPlacementRejections pins the role boundaries: an edge
// refuses publishers and resume subscriptions (pointing at the owner),
// and a core refuses sources the ring places elsewhere.
func TestFederatedPlacementRejections(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fc := startFedCluster(t, 2, 1, gasf.Options{}, false)
	schema, err := gasf.NewSchema("v")
	if err != nil {
		t.Fatal(err)
	}

	edge, err := gasf.Dial(fc.edgeNodes[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close(ctx)
	if _, err := edge.OpenSource(ctx, "src0", schema); err == nil {
		t.Fatal("edge accepted a publisher")
	} else if !strings.Contains(err.Error(), "core") {
		t.Fatalf("edge publisher rejection does not name the owner: %v", err)
	}
	if _, err := edge.Subscribe(ctx, "a", "src0", "DC1(v, 0.5, 0)", gasf.WithResumeFrom(0)); err == nil {
		t.Fatal("edge accepted a resume subscription")
	}

	topo, err := federate.NewTopology(fc.coreNodes)
	if err != nil {
		t.Fatal(err)
	}
	source := "src0"
	for i := 0; i < 1000; i++ {
		source = fmt.Sprintf("src%d", i)
		if topo.Owner(source).Name == "c1" {
			break
		}
	}
	wrong, err := gasf.Dial(fc.coreNodes[0].Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wrong.Close(ctx)
	if _, err := wrong.OpenSource(ctx, source, schema); err == nil {
		t.Fatal("core accepted a source the ring places elsewhere")
	} else if !strings.Contains(err.Error(), "c1") {
		t.Fatalf("misplacement rejection does not name the owner: %v", err)
	}
}
