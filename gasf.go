// Package gasf is the public API of the group-aware stream filtering
// library, a reproduction of "Group-Aware Stream Filtering" (Ming Li,
// Dartmouth College / ICDCS 2007).
//
// Group-aware stream filtering saves network bandwidth — the scarcest
// resource in multi-hop wireless mesh stream systems — by spending CPU
// time: when several applications subscribe to one source with approximate
// ("slack"-tolerant) quality requirements, each filter has many
// quality-equivalent candidate outputs, and coordinating the group to pick
// overlapping candidates minimizes the multiplexed multicast output.
//
// # Quickstart
//
// The primary surface is the context-first Broker (broker.go): one
// interface over an embedded in-process deployment and a networked one.
//
//	b, _ := gasf.NewEmbedded(gasf.WithShards(4))
//	src, _ := b.OpenSource(ctx, "buoy", schema)
//	sub, _ := b.Subscribe(ctx, "dashboard", "buoy", "DC1(temperature, 0.5, 0.25)")
//	go src.Publish(ctx, t)
//	d, _ := sub.Recv(ctx)
//
// Swap gasf.NewEmbedded for gasf.Dial("host:7070") and the same program
// drives a gasf-server over TCP. Finite batch runs keep the historical
// convenience wrappers, now layered on an embedded broker:
//
//	a, _ := gasf.NewDCFilter("A", "temperature", 50, 10)
//	b, _ := gasf.NewDCFilter("B", "temperature", 40, 5)
//	res, _ := gasf.Run([]gasf.Filter{a, b}, series, gasf.Options{Algorithm: gasf.RG})
//	fmt.Println(res.Stats.OIRatio())
//
// The facade re-exports the stable pieces of the internal packages: the
// tuple/stream model, the filter family (DC1/DC2/DC3, stratified sampling,
// stateful DC), the coordination engine with its algorithms (RG, PS),
// timely cuts and output strategies, the trace generators used in the
// paper's evaluation, and the Solar-style dissemination layer. See
// DESIGN.md for the architecture (§10 covers the broker layering) and
// EXPERIMENTS.md for the reproduction results.
package gasf

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gasf/internal/adapt"
	"gasf/internal/broker"
	"gasf/internal/core"
	"gasf/internal/filter"
	"gasf/internal/quality"
	"gasf/internal/shard"
	"gasf/internal/telemetry"
	"gasf/internal/trace"
	"gasf/internal/tuple"
)

// Re-exported data model types.
type (
	// Schema is an ordered set of attribute names for one source.
	Schema = tuple.Schema
	// Tuple is one timestamped stream item.
	Tuple = tuple.Tuple
	// Series is a finite, time-ordered tuple sequence.
	Series = tuple.Series
)

// Re-exported filter types.
type (
	// Filter is the group-aware filter contract (§2.2.2).
	Filter = filter.Filter
	// CandidateSet is a set of quality-equivalent output candidates.
	CandidateSet = filter.CandidateSet
	// Prescription selects Top/Bottom/Random output eligibility.
	Prescription = filter.Prescription
	// Signal derives the monitored scalar from a tuple.
	Signal = filter.Signal
)

// Re-exported engine types.
type (
	// Options configures the coordination engine.
	Options = core.Options
	// Algorithm selects RG or PS.
	Algorithm = core.Algorithm
	// OutputStrategy selects when decided outputs are released.
	OutputStrategy = core.OutputStrategy
	// Result carries the transmissions and statistics of a run.
	Result = core.Result
	// Stats aggregates the run's metrics.
	Stats = core.Stats
	// Transmission is one multicast send with destination labels.
	Transmission = core.Transmission
	// Punctuation marks a region boundary in the output stream (§3.4).
	Punctuation = core.Punctuation
	// Engine is the incremental (per-tuple) coordination interface.
	Engine = core.Engine
)

// Adaptive-control types (the future-work extensions of §3.1 and §4.8).
type (
	// DegradeConfig parameterizes the bandwidth-degradation controller.
	DegradeConfig = adapt.DegradeConfig
	// DegradeResult reports a degrading run and its scale trajectory.
	DegradeResult = adapt.DegradeResult
	// Scalable is implemented by filters whose granularity can be
	// degraded at run time (the DC family).
	Scalable = adapt.Scalable
)

// Re-exported quality-specification types.
type (
	// Spec is a parsed filter specification.
	Spec = quality.Spec
	// Group is a named set of specs subscribing to one source.
	Group = quality.Group
)

// Algorithm, strategy and prescription constants.
const (
	// RG is the region-based greedy algorithm (Fig 2.6).
	RG = core.RG
	// PS is the per-candidate-set greedy algorithm (Fig 2.10).
	PS = core.PS
	// EarliestRegion releases outputs when their region closes.
	EarliestRegion = core.EarliestRegion
	// PerCandidateSet releases outputs as soon as they are decided.
	PerCandidateSet = core.PerCandidateSet
	// Batched releases outputs every Options.BatchSize input tuples.
	Batched = core.Batched
	// Random, Top and Bottom are output-selection prescriptions.
	Random = filter.Random
	// Top restricts candidacy to the highest-valued tuples.
	Top = filter.Top
	// Bottom restricts candidacy to the lowest-valued tuples.
	Bottom = filter.Bottom
)

// NewSchema builds a schema from attribute names.
func NewSchema(names ...string) (*Schema, error) { return tuple.NewSchema(names...) }

// NewTuple creates a tuple bound to the schema.
func NewTuple(s *Schema, seq int, ts time.Time, values []float64) (*Tuple, error) {
	return tuple.New(s, seq, ts, values)
}

// NewSeries creates an empty series.
func NewSeries(s *Schema) *Series { return tuple.NewSeries(s) }

// NewDCFilter builds a single-attribute (slack, delta) delta-compression
// filter — the paper's canonical group-aware filter.
func NewDCFilter(id, attr string, delta, slack float64) (Filter, error) {
	return filter.NewDC1(id, attr, delta, slack)
}

// NewTrendFilter builds a DC2 trend delta-compression filter monitoring
// the change rate of attr per unit time.
func NewTrendFilter(id, attr string, delta, slack float64, unit time.Duration) (Filter, error) {
	return filter.NewDC2(id, attr, delta, slack, unit)
}

// NewAvgFilter builds a DC3 multi-attribute-average delta-compression
// filter.
func NewAvgFilter(id string, attrs []string, delta, slack float64) (Filter, error) {
	return filter.NewDC3(id, attrs, delta, slack)
}

// NewSamplingFilter builds a stratified-sampling filter: segments of the
// given interval are sampled at highPct (range >= threshold) or lowPct.
func NewSamplingFilter(id, attr string, interval time.Duration, threshold, highPct, lowPct float64, p Prescription) (Filter, error) {
	return filter.NewSS(id, attr, interval, threshold, highPct, lowPct, p)
}

// NewStatefulDCFilter builds a delta-compression filter whose candidate
// sets anchor on the previously chosen output (§2.3.3).
func NewStatefulDCFilter(id, attr string, delta, slack float64) (Filter, error) {
	return filter.NewStatefulDC(id, attr, delta, slack)
}

// NewSignalFilter builds a delta-compression filter over a caller-supplied
// signal — the extension hook for domain-specific candidate computation
// (§5.3).
func NewSignalFilter(id string, sig Signal, delta, slack float64) (Filter, error) {
	return filter.NewDCSignal(id, sig, delta, slack)
}

// NewEngine builds an incremental coordination engine over a filter group.
func NewEngine(filters []Filter, opts Options) (*Engine, error) {
	return core.NewEngine(filters, opts)
}

// Run drives a complete series through a fresh engine and returns its
// transmissions and statistics. It is a convenience wrapper over an
// embedded Broker (see NewEmbedded): the group joins a single live
// source, the series is published, and the engine result is returned —
// byte-identical to the long-lived streaming path the broker serves.
func Run(filters []Filter, sr *Series, opts Options) (*Result, error) {
	if sr == nil {
		return nil, fmt.Errorf("gasf: Run needs a series")
	}
	if opts.ShardCount == 0 {
		// A single finite source needs exactly one worker; GOMAXPROCS
		// shards would idle.
		opts.ShardCount = 1
	}
	const name = "source"
	results, _, err := runEmbeddedBatch(map[string][]Filter{name: filters}, map[string]*tuple.Series{name: sr}, opts)
	if err != nil {
		return nil, err
	}
	return results[name], nil
}

// ShardSnapshot reports one worker shard's runtime counters (tuples
// enqueued/processed/dropped, flushes, queue depths, throughput).
type ShardSnapshot = shard.Snapshot

// TelemetrySnapshot is a point-in-time read of the pipeline telemetry:
// the aggregate delivery-latency quantiles (frugal-estimated p50/p99
// with exact count and sum) and one log-scale duration histogram per
// instrumented pipeline stage. See Embedded.Telemetry.
type TelemetrySnapshot = telemetry.Snapshot

// LatencySnapshot reports one latency estimator pair: frugal-estimated
// p50/p99 plus the exact sample count and sum.
type LatencySnapshot = telemetry.LatencySnapshot

// RunSharded drives many single-source filter groups concurrently on the
// sharded multi-source runtime: sources are hash-partitioned onto
// Options.ShardCount worker shards (default GOMAXPROCS) and fed through
// bounded queues with backpressure. Each source keeps the paper's
// single-source semantics — its released sequence is identical to a
// sequential Run of the same group over the same series. groups and
// series must share the same source names. The returned snapshots carry
// the per-shard runtime counters of the completed run. Like Run, it is a
// convenience wrapper over an embedded Broker.
func RunSharded(groups map[string][]Filter, series map[string]*Series, opts Options) (map[string]*Result, []ShardSnapshot, error) {
	if len(groups) == 0 {
		return nil, nil, fmt.Errorf("gasf: RunSharded needs at least one source group")
	}
	for name := range groups {
		if _, ok := series[name]; !ok {
			return nil, nil, fmt.Errorf("gasf: no series for source %q", name)
		}
	}
	if len(series) != len(groups) {
		return nil, nil, fmt.Errorf("gasf: %d series for %d source groups", len(series), len(groups))
	}
	return runEmbeddedBatch(groups, series, opts)
}

// runEmbeddedBatch is the engine room of the Run* wrappers: an embedded
// broker is started with the given engine options, every group joins its
// live source with engine-only membership (no delivery plane), each
// series is published by its own producer with batched hand-offs, and
// the broker drains. The per-source engine results and shard snapshots
// of the completed run are returned.
func runEmbeddedBatch(groups map[string][]Filter, series map[string]*tuple.Series, opts Options) (map[string]*Result, []ShardSnapshot, error) {
	ctx := context.Background()
	names := make([]string, 0, len(groups))
	for name, filters := range groups {
		if len(filters) == 0 {
			return nil, nil, fmt.Errorf("gasf: source %q needs at least one filter", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	b, err := broker.New(broker.Config{Engine: opts})
	if err != nil {
		return nil, nil, fmt.Errorf("gasf: %w", err)
	}
	sources := make(map[string]*broker.Source, len(names))
	for _, name := range names {
		src, err := b.OpenSource(name, series[name].Schema())
		if err == nil {
			for _, f := range groups[name] {
				if err = b.AttachFilter(ctx, name, f); err != nil {
					break
				}
			}
		}
		if err != nil {
			b.Close(ctx)
			return nil, nil, fmt.Errorf("gasf: %w", err)
		}
		sources[name] = src
	}
	flush := opts.FlushBatch
	if flush <= 0 {
		flush = shard.DefaultFlushBatch
	}
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		errs  []error
	)
	record := func(err error) {
		errMu.Lock()
		errs = append(errs, err)
		errMu.Unlock()
	}
	for _, name := range names {
		wg.Add(1)
		go func(src *broker.Source, sr *tuple.Series) {
			defer wg.Done()
			all := sr.Tuples()
			for len(all) > 0 {
				n := min(flush, len(all))
				if err := src.PublishBatch(ctx, all[:n]); err != nil {
					record(err)
					return
				}
				all = all[n:]
			}
			if err := src.Finish(ctx); err != nil {
				record(err)
			}
		}(sources[name], series[name])
	}
	wg.Wait()
	if err := b.Close(ctx); err != nil {
		record(err)
	}
	if err := errors.Join(errs...); err != nil {
		return nil, nil, fmt.Errorf("gasf: %w", err)
	}
	return b.Results(), b.Metrics(), nil
}

// RunSelfInterested runs the paper's baseline: every filter selects its
// outputs greedily with no group coordination.
func RunSelfInterested(filters []Filter, sr *Series, opts Options) (*Result, error) {
	return core.RunSelfInterested(filters, sr, opts)
}

// ParseSpec reads a filter specification in the paper's notation, e.g.
// "DC1(fluoro, 0.0301, 0.0150)".
func ParseSpec(text string) (Spec, error) { return quality.Parse(text) }

// Selectivity measures a filter's self-interested selectivity on a sample
// series (§4.8).
func Selectivity(f Filter, sample *Series) (float64, error) {
	return adapt.Selectivity(f, sample)
}

// Partition splits a group into coordinated and direct filters by measured
// selectivity, isolating "bad" filters that would dilute group-aware
// savings (§4.8).
func Partition(filters []Filter, sample *Series, threshold float64) (coordinated, direct []Filter, selectivity map[string]float64, err error) {
	return adapt.Partition(filters, sample, threshold)
}

// RunPartitioned runs a partitioned group: coordinated filters through the
// group-aware engine, direct filters through the baseline, merged into one
// result.
func RunPartitioned(coordinated, direct []Filter, sr *Series, opts Options) (*Result, error) {
	return adapt.RunPartitioned(coordinated, direct, sr, opts)
}

// RunDegrading drives a group under an output-bandwidth budget, degrading
// granularity when the budget is exceeded and restoring it when load
// drops (§3.1).
func RunDegrading(filters []Filter, sr *Series, opts Options, cfg DegradeConfig) (*DegradeResult, error) {
	return adapt.RunDegrading(filters, sr, opts, cfg)
}

// Trace generators used by the paper's evaluation (synthetic equivalents;
// see DESIGN.md for the substitutions).
var (
	// NAMOS generates the lake-buoy trace (six thermistors and a
	// fluorometer).
	NAMOS = trace.NAMOS
	// CowTrace generates the burst-patterned cow-orientation trace.
	CowTrace = trace.Cow
	// SeismicTrace generates the volcano seismic trace.
	SeismicTrace = trace.Seismic
	// FireTrace generates the fire-experiment HRR(Q) trace.
	FireTrace = trace.FireHRR
	// PaperExample returns the worked ten-tuple example used throughout
	// the paper.
	PaperExample = trace.PaperExample
)

// TraceConfig parameterizes the trace generators.
type TraceConfig = trace.Config
