package gasf

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gasf/internal/server"
)

// Remote is the networked Broker implementation: every Source and
// Subscription is a TCP session against a gasf-server speaking the
// framed wire protocol (DESIGN.md §7). The handle itself holds no
// connection — sessions dial lazily, bounded by WithDialTimeout or the
// call's context deadline — and Close closes the sessions opened
// through it. With WithReconnect the sessions are self-healing: a lost
// connection is redialed on the configured backoff schedule and the
// stream resumed (see DESIGN.md §14 for the exact continuity contract).
type Remote struct {
	addr string
	cfg  brokerConfig

	mu       sync.Mutex
	closed   bool
	sessions map[any]func() error
}

var _ Broker = (*Remote)(nil)

// Dial returns a Broker driving the gasf-server at addr, e.g.
// "localhost:7070". Engine-shaping options belong to the server and are
// rejected here; WithDialTimeout bounds each session handshake and
// WithReconnect makes the sessions survive connection loss.
func Dial(addr string, opts ...Option) (*Remote, error) {
	cfg, err := resolveBrokerConfig(true, opts)
	if err != nil {
		return nil, err
	}
	return &Remote{addr: addr, cfg: cfg, sessions: make(map[any]func() error)}, nil
}

// track registers a live session for Close (re-registering under the
// same key replaces the close function after a redial); it reports false
// when the broker is already closed.
func (r *Remote) track(key any, close func() error) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.sessions[key] = close
	return true
}

// untrack forgets a session that closed itself.
func (r *Remote) untrack(key any) {
	r.mu.Lock()
	delete(r.sessions, key)
	r.mu.Unlock()
}

// OpenSource implements Broker: it opens a publisher session advertising
// the schema in the handshake.
func (r *Remote) OpenSource(ctx context.Context, name string, schema *Schema) (Source, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pub, err := server.DialPublisherTimeout(r.addr, name, schema, dialTimeoutFor(ctx, r.cfg.dialTimeout))
	if err != nil {
		return nil, err
	}
	src := &remoteSource{r: r, name: name, schema: schema}
	src.pub.Store(pub)
	if !r.track(src, pub.Close) {
		pub.Close()
		return nil, errBrokerClosed
	}
	return src, nil
}

// Subscribe implements Broker: the spec is parsed and validated locally,
// then relayed in its canonical (lossless) rendering; the server
// validates it against the source schema and applies the join at a tuple
// boundary before the handshake completes.
func (r *Remote) Subscribe(ctx context.Context, app, source, spec string, opts ...SubOption) (Subscription, error) {
	sp, err := specFor(spec)
	if err != nil {
		return nil, err
	}
	sc, err := resolveSubConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ss, err := server.DialSubscriberOpts(r.addr, app, source, sp.String(), server.SubDialOpts{
		Queue:      sc.queue,
		Resume:     sc.resume,
		ResumeFrom: sc.resumeFrom,
		Timeout:    dialTimeoutFor(ctx, r.cfg.dialTimeout),
		RecvBuffer: sc.recvBuffer,
	})
	if err != nil {
		return nil, err
	}
	sub := &remoteSub{
		r:          r,
		sp:         sp,
		app:        app,
		source:     source,
		specStr:    sp.String(),
		queue:      sc.queue,
		recvBuffer: sc.recvBuffer,
		origResume: sc.resume,
		origFrom:   sc.resumeFrom,
	}
	sub.sub.Store(ss)
	if !r.track(sub, ss.Close) {
		ss.Close()
		return nil, errBrokerClosed
	}
	return sub, nil
}

// Close implements Broker: publisher sessions close gracefully (the
// server flushes their tails to their subscribers) and subscriber
// sessions leave their groups. The server itself keeps running.
func (r *Remote) Close(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	open := make([]func() error, 0, len(r.sessions))
	for _, close := range r.sessions {
		open = append(open, close)
	}
	r.sessions = nil
	r.mu.Unlock()
	var errs []error
	for _, close := range open {
		if err := close(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// connLost reports whether err looks like a lost connection — the class
// of failure a redial can heal — rather than a caller-side cancellation
// or a protocol-level rejection. context.DeadlineExceeded implements
// net.Error, so the context sentinels are excluded first.
func connLost(err error) bool {
	if err == nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, server.ErrServerDraining) {
		// A drain-tagged goodbye: the stream ended because the server is
		// going down, not because the source finished — exactly the class
		// of failure a redial against a restarted server heals.
		return true
	}
	if errors.Is(err, ErrStreamEnded) || errors.Is(err, server.ErrEvicted) {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// backoffWait sleeps for the attempt'th backoff delay, bounded by ctx.
func backoffWait(ctx context.Context, b *Backoff, attempt int) error {
	t := time.NewTimer(b.delay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sourceWindowCap bounds the reconnect republish window, in tuples: the
// tuples published since the last Sync barrier that a redial would
// republish. Past the cap the oldest are forgotten (and the window
// marked truncated, which disables hint-based trimming — better to
// republish conservatively than to trim against an incomplete window).
const sourceWindowCap = 65536

// remoteSource adapts a publisher session to the unified interface.
// Without WithReconnect it is a thin veneer over one session; with it,
// publishes are serialized under mu, an unacked window of tuples since
// the last Sync barrier is retained, and a lost connection is redialed
// with the window republished — trimmed by the server's durable resume
// hint so a restart does not duplicate what already reached the log.
type remoteSource struct {
	r      *Remote
	name   string
	schema *Schema
	pub    atomic.Pointer[server.Publisher]

	// Reconnect state, all under mu (only touched when r.cfg.reconnect
	// is set; without it the methods call the session directly, unlocked,
	// preserving the historical concurrency profile).
	mu        sync.Mutex
	window    []*Tuple
	truncated bool
	finished  bool
}

var _ Source = (*remoteSource)(nil)

func (s *remoteSource) Name() string    { return s.name }
func (s *remoteSource) Schema() *Schema { return s.schema }

func (s *remoteSource) Publish(ctx context.Context, t *Tuple) error {
	if s.r.cfg.reconnect == nil {
		return s.pub.Load().PublishContext(ctx, t)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.publishLocked(ctx, []*Tuple{t})
}

func (s *remoteSource) PublishBatch(ctx context.Context, tuples []*Tuple) error {
	if s.r.cfg.reconnect == nil {
		return s.pub.Load().PublishBatchContext(ctx, tuples)
	}
	if len(tuples) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.publishLocked(ctx, tuples)
}

func (s *remoteSource) publishLocked(ctx context.Context, tuples []*Tuple) error {
	if s.finished {
		return fmt.Errorf("gasf: source %q finished", s.name)
	}
	err := s.pub.Load().PublishBatchContext(ctx, tuples)
	if err == nil {
		s.remember(tuples)
		return nil
	}
	if !connLost(err) {
		return err
	}
	// The write may have landed partially; remember the batch and let the
	// redial republish the whole window — the server's resume hint trims
	// whatever the old connection actually got into the durable log.
	s.remember(tuples)
	return s.redialReplayLocked(ctx)
}

// remember appends tuples to the unacked window, sliding out the oldest
// past the cap.
func (s *remoteSource) remember(tuples []*Tuple) {
	s.window = append(s.window, tuples...)
	if over := len(s.window) - sourceWindowCap; over > 0 {
		n := copy(s.window, s.window[over:])
		clear(s.window[n:])
		s.window = s.window[:n]
		s.truncated = true
	}
}

// redialReplayLocked redials the publisher session on the backoff
// schedule (bounded by ctx) and republishes the unacked window, trimmed
// by the fresh session's resume hint when the window can be trimmed
// safely. Replayed tuples stay in the window until the next Sync
// barrier acknowledges them.
func (s *remoteSource) redialReplayLocked(ctx context.Context) error {
	bo := s.r.cfg.reconnect
	s.pub.Load().Close()
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		pub, err := server.DialPublisherTimeout(s.r.addr, s.name, s.schema, dialTimeoutFor(ctx, s.r.cfg.dialTimeout))
		if err != nil {
			if wErr := backoffWait(ctx, bo, attempt); wErr != nil {
				return fmt.Errorf("gasf: reconnecting source %q: %w (last dial error: %v)", s.name, wErr, err)
			}
			continue
		}
		s.pub.Store(pub)
		if !s.r.track(s, pub.Close) {
			pub.Close()
			return errBrokerClosed
		}
		replay := s.window
		if maxSeq, ok := pub.ResumeHint(); ok && !s.truncated {
			replay = trimWindow(replay, maxSeq)
		}
		if len(replay) == 0 {
			return nil
		}
		err = pub.PublishBatchContext(ctx, replay)
		if err == nil {
			return nil
		}
		if !connLost(err) {
			return err
		}
		if wErr := backoffWait(ctx, bo, attempt); wErr != nil {
			return wErr
		}
	}
}

// trimWindow drops the window prefix the server already holds (sequence
// numbers <= maxSeq from the durable resume hint). Trimming by sequence
// is only sound when the window's sequence numbers are strictly
// increasing; otherwise the whole window is republished and the engine's
// strictly-increasing-timestamp check rejects true duplicates server
// side on non-durable runs.
func trimWindow(w []*Tuple, maxSeq int64) []*Tuple {
	for i := 1; i < len(w); i++ {
		if w[i].Seq <= w[i-1].Seq {
			return w
		}
	}
	for i, t := range w {
		if int64(t.Seq) > maxSeq {
			return w[i:]
		}
	}
	return nil
}

func (s *remoteSource) Sync(ctx context.Context) error {
	if s.r.cfg.reconnect == nil {
		return s.pub.Load().Sync(ctx)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return fmt.Errorf("gasf: source %q finished", s.name)
	}
	for {
		err := s.pub.Load().Sync(ctx)
		if err == nil {
			// The barrier acknowledges everything published so far: the
			// server has it ordered in the shard ring (and appended, when
			// durable), so the window can be forgotten.
			clear(s.window)
			s.window = s.window[:0]
			s.truncated = false
			return nil
		}
		if !connLost(err) {
			return err
		}
		if rerr := s.redialReplayLocked(ctx); rerr != nil {
			return rerr
		}
	}
}

// Finish sends the goodbye and closes the session; the server finishes
// the engine and flushes the tail to the subscribers asynchronously
// (their streams end once it lands). Finish is terminal even with
// reconnect enabled: a lost connection here is not redialed (the
// server's flow-gap expiry finishes an abandoned source on its own).
func (s *remoteSource) Finish(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.r.cfg.reconnect != nil {
		s.mu.Lock()
		s.finished = true
		s.mu.Unlock()
	}
	err := s.pub.Load().Close()
	s.r.untrack(s)
	return err
}

// remoteSub adapts a subscriber session to the unified interface.
// Without WithReconnect it is a veneer over one session; with it, the
// subscription tracks the last delivered durable log offset and a lost
// connection is redialed with Resume from lastOffset+1, splicing the
// redelivered history onto the live stream gapless and duplicate-free.
// A source-finish stream end and an eviction are terminal — never
// redialed; a drain-tagged end (server shutdown) redials like any other
// connection loss.
type remoteSub struct {
	r          *Remote
	sub        atomic.Pointer[server.Subscriber]
	sp         Spec
	app        string
	source     string
	specStr    string
	queue      int
	recvBuffer int
	origResume bool
	origFrom   uint64

	// Receive-side state; Recv/RecvInto are per-session serial (the
	// documented contract on every transport), so none of it needs a
	// lock.
	//
	// ended latches a terminal stream end: the session is closed and
	// untracked right away (a long-lived Remote would otherwise
	// accumulate dead sessions whose callers never Close after
	// ErrStreamEnded), and later receives keep reporting endedErr.
	ended    bool
	endedErr error
	// lastOffset/seen track the newest delivered durable log offset, the
	// resume point after a reconnect.
	lastOffset uint64
	seen       bool
	// scratch backs RecvInto so the session's zero-allocation decode
	// path carries over: the caller's tuple is lent to the wire decoder
	// and handed back with the reused label storage.
	scratch server.Delivery
}

var _ Subscription = (*remoteSub)(nil)

func (s *remoteSub) App() string     { return s.app }
func (s *remoteSub) Source() string  { return s.source }
func (s *remoteSub) Schema() *Schema { return s.sub.Load().Schema() }
func (s *remoteSub) Spec() Spec      { return s.sp }

// QoS returns the quality scale last announced by the server's degrade
// policy for this session (1 until any announcement arrives; resets to
// 1 on a reconnect, matching the fresh session's full fidelity).
func (s *remoteSub) QoS() float64 { return s.sub.Load().QoS() }

func (s *remoteSub) Recv(ctx context.Context) (*Delivery, error) {
	if s.ended {
		return nil, s.endedErr
	}
	for {
		d, err := s.sub.Load().RecvContext(ctx)
		if err == nil {
			s.noteOffset(d.Offset)
			return &Delivery{Tuple: d.Tuple, Destinations: d.Destinations, ReceivedAt: d.ReceivedAt, Offset: d.Offset}, nil
		}
		retry, ferr := s.recvErr(ctx, err)
		if !retry {
			return nil, ferr
		}
	}
}

func (s *remoteSub) RecvInto(ctx context.Context, d *Delivery) error {
	if s.ended {
		return s.endedErr
	}
	for {
		s.scratch.Tuple = d.Tuple
		s.scratch.Destinations = s.scratch.Destinations[:0]
		err := s.sub.Load().RecvIntoContext(ctx, &s.scratch)
		if err == nil {
			d.Tuple = s.scratch.Tuple
			d.Destinations = s.scratch.Destinations
			d.ReceivedAt = s.scratch.ReceivedAt
			d.Offset = s.scratch.Offset
			s.noteOffset(d.Offset)
			return nil
		}
		retry, ferr := s.recvErr(ctx, err)
		if !retry {
			return ferr
		}
	}
}

func (s *remoteSub) noteOffset(off uint64) {
	s.lastOffset, s.seen = off, true
}

// recvErr classifies a receive failure: terminal ends latch the
// subscription, connection loss redials when reconnect is configured
// (retry=true resumes the receive on the fresh session), anything else
// surfaces unchanged.
func (s *remoteSub) recvErr(ctx context.Context, err error) (retry bool, _ error) {
	if errors.Is(err, ErrStreamEnded) {
		if s.r.cfg.reconnect != nil && errors.Is(err, server.ErrServerDraining) {
			// The server is shutting down, not the source finishing:
			// redial and resume against its restarted incarnation. (A
			// permanent shutdown keeps the redial retrying until ctx
			// expires — the caller's ctx bounds the wait.)
			if rerr := s.redial(ctx); rerr != nil {
				return false, rerr
			}
			return true, nil
		}
		s.end(ErrStreamEnded)
		return false, ErrStreamEnded
	}
	if errors.Is(err, server.ErrEvicted) {
		mapped := mapStreamEnd(err)
		s.end(mapped)
		return false, mapped
	}
	if s.r.cfg.reconnect == nil || !connLost(err) {
		return false, err
	}
	if rerr := s.redial(ctx); rerr != nil {
		return false, rerr
	}
	return true, nil
}

// end retires the session on a terminal stream end: the server side is
// already gone, so the connection is released immediately and the broker
// stops tracking it.
func (s *remoteSub) end(err error) {
	s.ended = true
	s.endedErr = err
	_ = s.sub.Load().Close()
	s.r.untrack(s)
}

// redial re-establishes the subscriber session on the backoff schedule,
// bounded by ctx. Against a durable server it resumes from the last
// delivered offset (or the subscription's original resume point if
// nothing was delivered yet), splicing history and live stream with no
// gap and no duplicate. A server without a durable log rejects the
// resume; the redial then falls back to a plain live re-subscription.
func (s *remoteSub) redial(ctx context.Context) error {
	bo := s.r.cfg.reconnect
	_ = s.sub.Load().Close()
	resumeFromSeen := s.seen
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		o := server.SubDialOpts{Queue: s.queue, Timeout: dialTimeoutFor(ctx, s.r.cfg.dialTimeout), RecvBuffer: s.recvBuffer}
		switch {
		case resumeFromSeen:
			o.Resume, o.ResumeFrom = true, s.lastOffset+1
		case s.origResume:
			o.Resume, o.ResumeFrom = true, s.origFrom
		}
		ss, err := server.DialSubscriberOpts(s.r.addr, s.app, s.source, s.specStr, o)
		if err != nil {
			if resumeFromSeen && !s.origResume && errors.Is(err, server.ErrResumeUnavailable) {
				// The server cannot replay: no durable log (e.g. it was
				// restarted without one), the offset is past the log head,
				// or the session rides an edge node whose upstream leg owns
				// the resume state. Fall back to a plain live
				// re-subscription rather than never reconnecting.
				resumeFromSeen = false
				continue
			}
			// Everything else retries until ctx expires: the server may be
			// restarting (connection refused), the source may not have
			// reattached yet (unknown source), or the server may not have
			// noticed the old session die (already subscribed).
			if wErr := backoffWait(ctx, bo, attempt); wErr != nil {
				return fmt.Errorf("gasf: reconnecting subscription %s/%s: %w (last dial error: %v)", s.app, s.source, wErr, err)
			}
			continue
		}
		s.sub.Store(ss)
		if !s.r.track(s, ss.Close) {
			ss.Close()
			return errBrokerClosed
		}
		return nil
	}
}

// Close leaves the group and waits for the server's departure ack, so a
// caller that continues publishing afterwards knows the group has been
// re-derived without this member.
func (s *remoteSub) Close(ctx context.Context) error {
	if s.ended {
		return nil // the stream ended; the session is gone
	}
	err := s.sub.Load().Leave(ctx)
	s.r.untrack(s)
	return err
}
