package gasf

import (
	"context"
	"errors"
	"sync"

	"gasf/internal/server"
)

// Remote is the networked Broker implementation: every Source and
// Subscription is a TCP session against a gasf-server speaking the
// framed wire protocol (DESIGN.md §7). The handle itself holds no
// connection — sessions dial lazily, bounded by WithDialTimeout or the
// call's context deadline — and Close closes the sessions opened
// through it.
type Remote struct {
	addr string
	cfg  brokerConfig

	mu       sync.Mutex
	closed   bool
	sessions map[any]func() error
}

var _ Broker = (*Remote)(nil)

// Dial returns a Broker driving the gasf-server at addr, e.g.
// "localhost:7070". Engine-shaping options belong to the server and are
// rejected here; WithDialTimeout bounds each session handshake.
func Dial(addr string, opts ...Option) (*Remote, error) {
	cfg, err := resolveBrokerConfig(true, opts)
	if err != nil {
		return nil, err
	}
	return &Remote{addr: addr, cfg: cfg, sessions: make(map[any]func() error)}, nil
}

// track registers a live session for Close; it reports false when the
// broker is already closed.
func (r *Remote) track(key any, close func() error) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.sessions[key] = close
	return true
}

// untrack forgets a session that closed itself.
func (r *Remote) untrack(key any) {
	r.mu.Lock()
	delete(r.sessions, key)
	r.mu.Unlock()
}

// OpenSource implements Broker: it opens a publisher session advertising
// the schema in the handshake.
func (r *Remote) OpenSource(ctx context.Context, name string, schema *Schema) (Source, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pub, err := server.DialPublisherTimeout(r.addr, name, schema, dialTimeoutFor(ctx, r.cfg.dialTimeout))
	if err != nil {
		return nil, err
	}
	src := &remoteSource{r: r, pub: pub, schema: schema}
	if !r.track(src, pub.Close) {
		pub.Close()
		return nil, errBrokerClosed
	}
	return src, nil
}

// Subscribe implements Broker: the spec is parsed and validated locally,
// then relayed in its canonical (lossless) rendering; the server
// validates it against the source schema and applies the join at a tuple
// boundary before the handshake completes.
func (r *Remote) Subscribe(ctx context.Context, app, source, spec string, opts ...SubOption) (Subscription, error) {
	sp, err := specFor(spec)
	if err != nil {
		return nil, err
	}
	sc, err := resolveSubConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ss, err := server.DialSubscriberOpts(r.addr, app, source, sp.String(), server.SubDialOpts{
		Queue:      sc.queue,
		Resume:     sc.resume,
		ResumeFrom: sc.resumeFrom,
		Timeout:    dialTimeoutFor(ctx, r.cfg.dialTimeout),
	})
	if err != nil {
		return nil, err
	}
	sub := &remoteSub{r: r, sub: ss, sp: sp}
	if !r.track(sub, ss.Close) {
		ss.Close()
		return nil, errBrokerClosed
	}
	return sub, nil
}

// Close implements Broker: publisher sessions close gracefully (the
// server flushes their tails to their subscribers) and subscriber
// sessions leave their groups. The server itself keeps running.
func (r *Remote) Close(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	open := make([]func() error, 0, len(r.sessions))
	for _, close := range r.sessions {
		open = append(open, close)
	}
	r.sessions = nil
	r.mu.Unlock()
	var errs []error
	for _, close := range open {
		if err := close(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := ctx.Err(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// remoteSource adapts a publisher session to the unified interface.
type remoteSource struct {
	r      *Remote
	pub    *server.Publisher
	schema *Schema
}

var _ Source = (*remoteSource)(nil)

func (s *remoteSource) Name() string    { return s.pub.Source() }
func (s *remoteSource) Schema() *Schema { return s.schema }

func (s *remoteSource) Publish(ctx context.Context, t *Tuple) error {
	return s.pub.PublishContext(ctx, t)
}

func (s *remoteSource) PublishBatch(ctx context.Context, tuples []*Tuple) error {
	return s.pub.PublishBatchContext(ctx, tuples)
}

func (s *remoteSource) Sync(ctx context.Context) error { return s.pub.Sync(ctx) }

// Finish sends the goodbye and closes the session; the server finishes
// the engine and flushes the tail to the subscribers asynchronously
// (their streams end once it lands).
func (s *remoteSource) Finish(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	err := s.pub.Close()
	s.r.untrack(s)
	return err
}

// remoteSub adapts a subscriber session to the unified interface.
type remoteSub struct {
	r   *Remote
	sub *server.Subscriber
	sp  Spec
	// ended latches a graceful stream end: the session is closed and
	// untracked right away (a long-lived Remote would otherwise
	// accumulate dead sessions whose callers never Close after
	// ErrStreamEnded), and later receives keep reporting the end.
	ended bool
	// scratch backs RecvInto so the session's zero-allocation decode
	// path carries over: the caller's tuple is lent to the wire decoder
	// and handed back with the reused label storage.
	scratch server.Delivery
}

var _ Subscription = (*remoteSub)(nil)

func (s *remoteSub) App() string     { return s.sub.App() }
func (s *remoteSub) Source() string  { return s.sub.Source() }
func (s *remoteSub) Schema() *Schema { return s.sub.Schema() }
func (s *remoteSub) Spec() Spec      { return s.sp }

func (s *remoteSub) Recv(ctx context.Context) (*Delivery, error) {
	if s.ended {
		return nil, ErrStreamEnded
	}
	d, err := s.sub.RecvContext(ctx)
	if err != nil {
		return nil, s.observeEnd(err)
	}
	return &Delivery{Tuple: d.Tuple, Destinations: d.Destinations, ReceivedAt: d.ReceivedAt, Offset: d.Offset}, nil
}

func (s *remoteSub) RecvInto(ctx context.Context, d *Delivery) error {
	if s.ended {
		return ErrStreamEnded
	}
	s.scratch.Tuple = d.Tuple
	s.scratch.Destinations = s.scratch.Destinations[:0]
	if err := s.sub.RecvIntoContext(ctx, &s.scratch); err != nil {
		return s.observeEnd(err)
	}
	d.Tuple = s.scratch.Tuple
	d.Destinations = s.scratch.Destinations
	d.ReceivedAt = s.scratch.ReceivedAt
	d.Offset = s.scratch.Offset
	return nil
}

// observeEnd retires the session on a graceful stream end: the server
// has already said goodbye, so the connection is released immediately
// and the broker stops tracking it. Recv is per-session serial, so the
// latch needs no lock.
func (s *remoteSub) observeEnd(err error) error {
	if errors.Is(err, ErrStreamEnded) {
		s.ended = true
		_ = s.sub.Close()
		s.r.untrack(s)
	}
	return err
}

// Close leaves the group and waits for the server's departure ack, so a
// caller that continues publishing afterwards knows the group has been
// re-derived without this member.
func (s *remoteSub) Close(ctx context.Context) error {
	if s.ended {
		return nil // the stream ended gracefully; the session is gone
	}
	err := s.sub.Leave(ctx)
	s.r.untrack(s)
	return err
}
